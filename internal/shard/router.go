// Dynamic membership for the writable cluster: an epoch-versioned
// Manifest that both ROUTES points to shard members (hash slots or a kd
// split tree) and RECORDS membership lineage (which member split off
// which, and at what id fence). The coordinator mutates it copy-on-write,
// bumps Epoch on every membership change, and persists it with WriteTo —
// queries that observe two different epochs straddled a split and must be
// re-scattered.
package shard

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
)

// DefaultSlots is the hash-routing slot-space size: points hash onto one
// of this many slots, and membership changes reassign whole slots. It
// caps how many members a hash-routed cluster can grow to.
const DefaultSlots = 256

// SlotOf returns the hash slot of a point: FNV-1a over its coordinate
// bits, mod numSlots. Content-addressed like hashPartition, so the same
// point always lands on the same slot no matter which engine stored it.
func SlotOf(p []float64, numSlots int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range p {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64() % uint64(numSlots)
}

// Role is a member's or replica's place in the replication topology.
// The zero value is RoleLeader so manifest_v1 members — written before
// roles existed — load as leaders with empty replica sets.
type Role int

const (
	// RoleLeader serves reads and owns all writes for its routing region.
	RoleLeader Role = iota
	// RoleFollower is a caught-up live copy: eligible for read failover
	// and for promotion when its leader dies.
	RoleFollower
	// RoleCatchingUp is still streaming the leader's segments and tail;
	// not yet eligible for reads or promotion.
	RoleCatchingUp
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleFollower:
		return "follower"
	case RoleCatchingUp:
		return "catching-up"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Replica is one follower of a member, recorded in the manifest so a
// resumed coordinator can re-attach it by name and so operators can see
// the replication topology. AckedSeq is the follower's replication
// watermark (highest leader sequence it had applied) at the last
// membership persist — advisory, like Member.Points.
type Replica struct {
	Name     string
	Role     Role
	AckedSeq uint64
}

// Member is one shard of a dynamic cluster. IDs are assigned once and
// never reused; lineage (Parent, BaseSeq) lets delete routing chase a
// point that a split moved: a point id below BaseSeq may have been
// inherited from the parent's lineage, an id at or above it was assigned
// natively.
type Member struct {
	// ID is the member's stable identity (≥ 1).
	ID uint64
	// Name is the display/addressing label (e.g. the shard URL).
	Name string
	// Parent is the member this one split off from (0 for founders).
	Parent uint64
	// BaseSeq is the engine id fence at creation: local ids < BaseSeq may
	// refer to points inherited through the split, ids ≥ BaseSeq are
	// natively assigned. Founders have BaseSeq 0.
	BaseSeq uint64
	// Points and the weight masses snapshot the member's engine at the
	// last membership change (advisory: live values drift with writes).
	Points int
	WPos   float64
	WNeg   float64
	// Role is the member's replication role. Top-level members are always
	// leaders (followers live in Replicas); the zero value keeps
	// manifest_v1 files loading as all-leader memberships.
	Role Role
	// Replicas is the member's follower set (manifest_v2; empty for
	// manifest_v1 files).
	Replicas []Replica
}

// RouteNode is one node of the kd routing tree. An internal node sends
// p[Dim] < Cut left and p[Dim] ≥ Cut right; a leaf (Dim == -1) names the
// owning member.
type RouteNode struct {
	Dim         int32 // -1 for leaves
	Cut         float64
	Left, Right int32  // child node indices (internal nodes)
	Member      uint64 // owning member (leaves)
}

// Manifest is the epoch-versioned membership + routing state of a
// writable cluster. Epoch starts at 1 and increases by exactly one on
// every membership change; two manifests with equal epochs are
// identical. Values are treated as immutable — mutations go through
// Clone + ApplySplit so readers can hold a snapshot without locks.
type Manifest struct {
	Epoch   uint64
	Kind    Kind
	Members []Member

	// NumSlots/Slots route under Hash: Slots[s] is the member ID owning
	// hash slot s.
	NumSlots int
	Slots    []uint64

	// Nodes routes under KDSplit: a binary tree rooted at index 0.
	Nodes []RouteNode
}

// ErrStaleManifest reports an attempt to install a manifest whose epoch
// does not advance the current one — a file or message from before the
// latest membership change.
var ErrStaleManifest = errors.New("shard: stale manifest epoch")

// NewManifest founds a cluster manifest at epoch 1. Hash routing accepts
// any member count up to the slot space; kd routing must start from a
// single member (the split tree grows one leaf per shard split — there is
// no spatial information to divide an empty tree among several founders).
func NewManifest(kind Kind, members []Member) (*Manifest, error) {
	if len(members) == 0 {
		return nil, errors.New("shard: manifest needs at least one member")
	}
	seen := map[uint64]bool{}
	for _, mb := range members {
		if mb.ID == 0 {
			return nil, errors.New("shard: member id 0 is reserved")
		}
		if seen[mb.ID] {
			return nil, fmt.Errorf("shard: duplicate member id %d", mb.ID)
		}
		seen[mb.ID] = true
	}
	m := &Manifest{Epoch: 1, Kind: kind, Members: append([]Member(nil), members...)}
	switch kind {
	case Hash:
		if len(members) > DefaultSlots {
			return nil, fmt.Errorf("shard: %d members exceed the %d-slot hash space", len(members), DefaultSlots)
		}
		m.NumSlots = DefaultSlots
		m.Slots = make([]uint64, DefaultSlots)
		for s := range m.Slots {
			// Round-robin founding assignment: statistically even and
			// spatially mixed, like the static hash partitioner.
			m.Slots[s] = members[s%len(members)].ID
		}
	case KDSplit:
		if len(members) != 1 {
			return nil, fmt.Errorf("shard: kd routing must start from one member and grow by splits, got %d", len(members))
		}
		m.Nodes = []RouteNode{{Dim: -1, Member: members[0].ID}}
	default:
		return nil, fmt.Errorf("shard: unknown partitioner %d", int(kind))
	}
	return m, nil
}

// Clone returns a deep copy for copy-on-write mutation.
func (m *Manifest) Clone() *Manifest {
	c := *m
	c.Members = append([]Member(nil), m.Members...)
	for i := range c.Members {
		c.Members[i].Replicas = append([]Replica(nil), c.Members[i].Replicas...)
	}
	c.Slots = append([]uint64(nil), m.Slots...)
	c.Nodes = append([]RouteNode(nil), m.Nodes...)
	return &c
}

// Member returns the member with the given id, or nil.
func (m *Manifest) Member(id uint64) *Member {
	for i := range m.Members {
		if m.Members[i].ID == id {
			return &m.Members[i]
		}
	}
	return nil
}

// Route returns the ID of the member owning the point.
func (m *Manifest) Route(p []float64) uint64 {
	if m.Kind == Hash {
		return m.Slots[SlotOf(p, m.NumSlots)]
	}
	i := int32(0)
	for {
		n := m.Nodes[i]
		if n.Dim < 0 {
			return n.Member
		}
		if int(n.Dim) < len(p) && p[n.Dim] < n.Cut {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// MemberSlots returns the hash slots owned by a member, ascending.
func (m *Manifest) MemberSlots(id uint64) []uint64 {
	var out []uint64
	for s, owner := range m.Slots {
		if owner == id {
			out = append(out, uint64(s))
		}
	}
	return out
}

// SplitRule is the predicate of one shard split in transferable form:
// which points move from the source member to the new one. The source
// engine evaluates it via Pred; the manifest applies the same rule to its
// routing state, so routing and placement advance together.
type SplitRule struct {
	Kind Kind
	// Dim/Cut (kd): points with p[Dim] ≥ Cut move.
	Dim int
	Cut float64
	// NumSlots/Slots (hash): points whose slot appears in Slots move.
	NumSlots int
	Slots    []uint64
}

// Pred compiles the rule into a point predicate (true = the point moves).
func (r SplitRule) Pred() (func(p []float64) bool, error) {
	switch r.Kind {
	case Hash:
		if r.NumSlots <= 0 {
			return nil, errors.New("shard: split rule without a slot space")
		}
		moved := make(map[uint64]bool, len(r.Slots))
		for _, s := range r.Slots {
			if s >= uint64(r.NumSlots) {
				return nil, fmt.Errorf("shard: split rule slot %d outside [0,%d)", s, r.NumSlots)
			}
			moved[s] = true
		}
		return func(p []float64) bool { return moved[SlotOf(p, r.NumSlots)] }, nil
	case KDSplit:
		if r.Dim < 0 {
			return nil, fmt.Errorf("shard: split rule dimension %d out of range", r.Dim)
		}
		dim, cut := r.Dim, r.Cut
		return func(p []float64) bool { return dim < len(p) && p[dim] >= cut }, nil
	default:
		return nil, fmt.Errorf("shard: unknown split rule kind %d", int(r.Kind))
	}
}

// ApplySplit returns a new manifest one epoch ahead, recording that
// member `to` split off member `from` under the given rule: the new
// member joins with lineage (Parent = from), and the routing state moves
// the ruled-out region — the rule's hash slots, or the ≥-Cut half of
// from's kd leaf — to the new member.
func (m *Manifest) ApplySplit(from uint64, to Member, rule SplitRule) (*Manifest, error) {
	if m.Member(from) == nil {
		return nil, fmt.Errorf("shard: split source member %d not in manifest", from)
	}
	if to.ID == 0 {
		return nil, errors.New("shard: member id 0 is reserved")
	}
	if m.Member(to.ID) != nil {
		return nil, fmt.Errorf("shard: member id %d already in manifest", to.ID)
	}
	if rule.Kind != m.Kind {
		return nil, fmt.Errorf("shard: split rule kind %v does not match manifest kind %v", rule.Kind, m.Kind)
	}
	c := m.Clone()
	c.Epoch++
	to.Parent = from
	c.Members = append(c.Members, to)
	switch m.Kind {
	case Hash:
		if rule.NumSlots != m.NumSlots {
			return nil, fmt.Errorf("shard: split rule slot space %d, manifest has %d", rule.NumSlots, m.NumSlots)
		}
		if len(rule.Slots) == 0 {
			return nil, errors.New("shard: hash split moves no slots")
		}
		for _, s := range rule.Slots {
			if s >= uint64(m.NumSlots) {
				return nil, fmt.Errorf("shard: split slot %d outside [0,%d)", s, m.NumSlots)
			}
			if c.Slots[s] != from {
				return nil, fmt.Errorf("shard: split slot %d owned by member %d, not %d", s, c.Slots[s], from)
			}
			c.Slots[s] = to.ID
		}
	case KDSplit:
		leaf := int32(-1)
		for i, n := range c.Nodes {
			if n.Dim < 0 && n.Member == from {
				leaf = int32(i)
				break
			}
		}
		if leaf < 0 {
			return nil, fmt.Errorf("shard: member %d owns no kd region", from)
		}
		l := int32(len(c.Nodes))
		c.Nodes = append(c.Nodes,
			RouteNode{Dim: -1, Member: from},
			RouteNode{Dim: -1, Member: to.ID},
		)
		c.Nodes[leaf] = RouteNode{Dim: int32(rule.Dim), Cut: rule.Cut, Left: l, Right: l + 1}
	}
	return c, nil
}

// ApplyPromotion returns a new manifest one epoch ahead, recording that
// the named follower of member `id` took over as its leader: the member
// keeps its ID (so cluster-global ids gid = member<<48|seq and the
// lineage fences keep resolving) but is re-addressed under the
// follower's name, and the follower leaves the replica set. The old
// leader's address is gone from the manifest — its process is dead or
// unknowable, which is why the promotion happened.
func (m *Manifest) ApplyPromotion(id uint64, replicaName string) (*Manifest, error) {
	mb := m.Member(id)
	if mb == nil {
		return nil, fmt.Errorf("shard: promotion target member %d not in manifest", id)
	}
	found := -1
	for i, r := range mb.Replicas {
		if r.Name == replicaName {
			found = i
			break
		}
	}
	if found < 0 {
		return nil, fmt.Errorf("shard: member %d has no replica %q to promote", id, replicaName)
	}
	if mb.Replicas[found].Role != RoleFollower {
		return nil, fmt.Errorf("shard: replica %q of member %d is %v, only a caught-up follower can be promoted",
			replicaName, id, mb.Replicas[found].Role)
	}
	c := m.Clone()
	cb := c.Member(id)
	cb.Name = replicaName
	cb.Role = RoleLeader
	cb.Replicas = append(cb.Replicas[:found], cb.Replicas[found+1:]...)
	c.Epoch++
	return c, nil
}

// manifestVersion is the manifest wire-format version — its own version
// space, independent of the engine persistence version. Version history:
//
//	v1: Epoch, Kind, Members (ID/Name/Parent/BaseSeq/Points/WPos/WNeg),
//	    NumSlots/Slots, Nodes.
//	v2: Members grow Role and Replicas (name + role + acked-seq
//	    watermark) for the replication subsystem. v1 files still load:
//	    roles default to leader, replica sets to empty.
const manifestVersion = 2

// oldestReadableManifestVersion is the oldest manifest version
// ReadManifest accepts.
const oldestReadableManifestVersion = 1

// manifestPayload is the gob wire image of a Manifest.
type manifestPayload struct {
	Version  int
	Epoch    uint64
	Kind     int
	Members  []Member
	NumSlots int
	Slots    []uint64
	Nodes    []RouteNode
}

// WriteTo serializes the manifest. The stream is self-describing and
// validated on load; see ReadManifest.
func (m *Manifest) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	err := gob.NewEncoder(cw).Encode(manifestPayload{
		Version:  manifestVersion,
		Epoch:    m.Epoch,
		Kind:     int(m.Kind),
		Members:  m.Members,
		NumSlots: m.NumSlots,
		Slots:    m.Slots,
		Nodes:    m.Nodes,
	})
	return cw.n, err
}

// countWriter counts bytes for the io.WriterTo contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadManifest deserializes and validates a cluster manifest: a
// truncated or corrupted stream, an unknown version, or a structurally
// inconsistent manifest (dangling slot owners, malformed kd tree,
// duplicate members, broken lineage) all fail loudly — a coordinator
// must never boot onto routing state it cannot trust.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var p manifestPayload
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	if p.Version < oldestReadableManifestVersion || p.Version > manifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d not supported (this build reads versions %d..%d)",
			p.Version, oldestReadableManifestVersion, manifestVersion)
	}
	if p.Epoch == 0 {
		return nil, errors.New("shard: manifest epoch 0 (epochs start at 1)")
	}
	m := &Manifest{
		Epoch: p.Epoch, Kind: Kind(p.Kind), Members: p.Members,
		NumSlots: p.NumSlots, Slots: p.Slots, Nodes: p.Nodes,
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("shard: invalid manifest: %w", err)
	}
	return m, nil
}

// validate checks structural consistency.
func (m *Manifest) validate() error {
	if len(m.Members) == 0 {
		return errors.New("no members")
	}
	ids := map[uint64]bool{}
	for _, mb := range m.Members {
		if mb.ID == 0 {
			return errors.New("member id 0")
		}
		if ids[mb.ID] {
			return fmt.Errorf("duplicate member id %d", mb.ID)
		}
		ids[mb.ID] = true
	}
	for _, mb := range m.Members {
		if mb.Parent != 0 && !ids[mb.Parent] {
			return fmt.Errorf("member %d has unknown parent %d", mb.ID, mb.Parent)
		}
	}
	names := map[string]uint64{}
	for _, mb := range m.Members {
		if mb.Role != RoleLeader {
			return fmt.Errorf("member %d has role %v (top-level members must be leaders)", mb.ID, mb.Role)
		}
		if prev, dup := names[mb.Name]; dup {
			return fmt.Errorf("member %d reuses name %q of member %d", mb.ID, mb.Name, prev)
		}
		names[mb.Name] = mb.ID
		for _, r := range mb.Replicas {
			if r.Name == "" {
				return fmt.Errorf("member %d has a replica with an empty name", mb.ID)
			}
			if r.Role != RoleFollower && r.Role != RoleCatchingUp {
				return fmt.Errorf("replica %q of member %d has role %v (want follower or catching-up)", r.Name, mb.ID, r.Role)
			}
			if prev, dup := names[r.Name]; dup {
				return fmt.Errorf("replica %q of member %d reuses the name of member %d", r.Name, mb.ID, prev)
			}
			names[r.Name] = mb.ID
		}
	}
	switch m.Kind {
	case Hash:
		if m.NumSlots <= 0 || len(m.Slots) != m.NumSlots {
			return fmt.Errorf("slot table has %d entries for a %d-slot space", len(m.Slots), m.NumSlots)
		}
		for s, owner := range m.Slots {
			if !ids[owner] {
				return fmt.Errorf("slot %d owned by unknown member %d", s, owner)
			}
		}
	case KDSplit:
		if len(m.Nodes) == 0 {
			return errors.New("empty kd routing tree")
		}
		// Walk from the root: every node reachable exactly once, every
		// leaf naming a known member.
		visited := make([]bool, len(m.Nodes))
		stack := []int32{0}
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if i < 0 || int(i) >= len(m.Nodes) {
				return fmt.Errorf("kd node index %d out of range", i)
			}
			if visited[i] {
				return fmt.Errorf("kd node %d reached twice (cycle or diamond)", i)
			}
			visited[i] = true
			n := m.Nodes[i]
			if n.Dim < 0 {
				if !ids[n.Member] {
					return fmt.Errorf("kd leaf %d names unknown member %d", i, n.Member)
				}
				continue
			}
			stack = append(stack, n.Left, n.Right)
		}
		for i, v := range visited {
			if !v {
				return fmt.Errorf("kd node %d unreachable from the root", i)
			}
		}
	default:
		return fmt.Errorf("unknown partitioner %d", int(m.Kind))
	}
	return nil
}
