package shard

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/vec"
)

// randMatrix builds a deterministic random dataset.
func randMatrix(t *testing.T, rows, cols int, seed int64) *vec.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		r := m.Row(i)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
	}
	return m
}

// checkPermutation asserts the plan's row lists tile 0..rows-1 exactly
// once.
func checkPermutation(t *testing.T, p *Plan, rows int) {
	t.Helper()
	seen := make([]bool, rows)
	total := 0
	for s, rs := range p.Rows {
		if len(rs) == 0 {
			t.Fatalf("shard %d empty", s)
		}
		if p.Meta[s].Points != len(rs) {
			t.Fatalf("shard %d meta points %d != %d rows", s, p.Meta[s].Points, len(rs))
		}
		for _, r := range rs {
			if r < 0 || r >= rows || seen[r] {
				t.Fatalf("row %d out of range or duplicated", r)
			}
			seen[r] = true
			total++
		}
	}
	if total != rows {
		t.Fatalf("plan covers %d of %d rows", total, rows)
	}
}

func TestPartitionCoversAllRows(t *testing.T) {
	m := randMatrix(t, 500, 4, 1)
	for _, kind := range []Kind{Hash, KDSplit} {
		for _, n := range []int{1, 2, 4, 7} {
			p, err := Partition(m, nil, n, kind)
			if err != nil {
				t.Fatalf("%v n=%d: %v", kind, n, err)
			}
			if len(p.Rows) != n || len(p.Meta) != n {
				t.Fatalf("%v n=%d: got %d row lists, %d metas", kind, n, len(p.Rows), len(p.Meta))
			}
			checkPermutation(t, p, m.Rows)
		}
	}
}

func TestPartitionWeightMass(t *testing.T) {
	m := randMatrix(t, 300, 3, 2)
	w := make([]float64, m.Rows)
	wantPos, wantNeg := 0.0, 0.0
	rng := rand.New(rand.NewSource(3))
	for i := range w {
		w[i] = rng.NormFloat64()
		if w[i] >= 0 {
			wantPos += w[i]
		} else {
			wantNeg -= w[i]
		}
	}
	for _, kind := range []Kind{Hash, KDSplit} {
		p, err := Partition(m, w, 4, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		gotPos, gotNeg := 0.0, 0.0
		for _, meta := range p.Meta {
			gotPos += meta.WPos
			gotNeg += meta.WNeg
			if meta.WPos < 0 || meta.WNeg < 0 {
				t.Fatalf("%v: negative mass %+v", kind, meta)
			}
		}
		if math.Abs(gotPos-wantPos) > 1e-9 || math.Abs(gotNeg-wantNeg) > 1e-9 {
			t.Fatalf("%v: mass (%v,%v), want (%v,%v)", kind, gotPos, gotNeg, wantPos, wantNeg)
		}
	}
}

func TestKDSplitBalanced(t *testing.T) {
	m := randMatrix(t, 1003, 5, 4)
	for _, n := range []int{2, 3, 4, 8} {
		p, err := Partition(m, nil, n, KDSplit)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		lo, hi := m.Rows, 0
		for _, rs := range p.Rows {
			if len(rs) < lo {
				lo = len(rs)
			}
			if len(rs) > hi {
				hi = len(rs)
			}
		}
		if hi-lo > 1+m.Rows/(2*n) {
			t.Fatalf("n=%d: shard sizes range [%d,%d], too unbalanced", n, lo, hi)
		}
	}
}

// TestHashStableUnderReorder pins the content-addressed property: shuffling
// the storage order must not change which shard a point lands on.
func TestHashStableUnderReorder(t *testing.T) {
	m := randMatrix(t, 200, 3, 5)
	perm := rand.New(rand.NewSource(6)).Perm(m.Rows)
	shuf := vec.NewMatrix(m.Rows, m.Cols)
	for i, pi := range perm {
		copy(shuf.Row(i), m.Row(pi))
	}
	p1, err := Partition(m, nil, 4, Hash)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Partition(shuf, nil, 4, Hash)
	if err != nil {
		t.Fatal(err)
	}
	shardOf := func(p *Plan, rows int) []int {
		out := make([]int, rows)
		for s, rs := range p.Rows {
			for _, r := range rs {
				out[r] = s
			}
		}
		return out
	}
	s1 := shardOf(p1, m.Rows)
	s2 := shardOf(p2, m.Rows)
	for i, pi := range perm {
		if s2[i] != s1[pi] {
			t.Fatalf("point moved shard under reorder: row %d (orig %d) shard %d vs %d", i, pi, s2[i], s1[pi])
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	m := randMatrix(t, 10, 2, 7)
	if _, err := Partition(nil, nil, 2, Hash); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := Partition(m, nil, 0, Hash); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := Partition(m, nil, 11, KDSplit); err == nil {
		t.Fatal("more shards than points accepted")
	}
	if _, err := Partition(m, make([]float64, 3), 2, Hash); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := Partition(m, nil, 2, Kind(99)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{"hash": Hash, "kd": KDSplit, "kd-split": KDSplit} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("bad kind accepted")
	}
}
