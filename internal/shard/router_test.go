package shard

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// grownManifest builds a hash manifest taken through two splits, so
// round-trip tests cover lineage, reassigned slots and a multi-epoch
// history.
func grownManifest(t *testing.T) *Manifest {
	t.Helper()
	man, err := NewManifest(Hash, []Member{
		{ID: 1, Name: "a", Points: 100, WPos: 50},
		{ID: 2, Name: "b", Points: 120, WPos: 61, WNeg: 2},
	})
	if err != nil {
		t.Fatalf("NewManifest: %v", err)
	}
	slots := man.MemberSlots(1)
	man, err = man.ApplySplit(1, Member{ID: 3, Name: "a/split-3", BaseSeq: 77, Points: 40, WPos: 20},
		SplitRule{Kind: Hash, NumSlots: man.NumSlots, Slots: slots[len(slots)/2:]})
	if err != nil {
		t.Fatalf("ApplySplit: %v", err)
	}
	slots = man.MemberSlots(2)
	man, err = man.ApplySplit(2, Member{ID: 4, Name: "b/split-4", BaseSeq: 130, Points: 60, WPos: 31},
		SplitRule{Kind: Hash, NumSlots: man.NumSlots, Slots: slots[len(slots)/2:]})
	if err != nil {
		t.Fatalf("ApplySplit: %v", err)
	}
	return man
}

// grownKDManifest builds a kd manifest grown from one member by two
// splits.
func grownKDManifest(t *testing.T) *Manifest {
	t.Helper()
	man, err := NewManifest(KDSplit, []Member{{ID: 1, Name: "root", Points: 200, WPos: 100}})
	if err != nil {
		t.Fatalf("NewManifest: %v", err)
	}
	man, err = man.ApplySplit(1, Member{ID: 2, Name: "root/split-2", BaseSeq: 201},
		SplitRule{Kind: KDSplit, Dim: 0, Cut: 0.5})
	if err != nil {
		t.Fatalf("ApplySplit: %v", err)
	}
	man, err = man.ApplySplit(2, Member{ID: 3, Name: "root/split-2/split-3", BaseSeq: 260},
		SplitRule{Kind: KDSplit, Dim: 1, Cut: -1.25})
	if err != nil {
		t.Fatalf("ApplySplit: %v", err)
	}
	return man
}

// TestManifestRoundTrip serializes grown hash and kd manifests and checks
// the loaded copy is identical — same epoch, lineage, and routing
// decisions on random points.
func TestManifestRoundTrip(t *testing.T) {
	for name, man := range map[string]*Manifest{
		"hash": grownManifest(t),
		"kd":   grownKDManifest(t),
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			n, err := man.WriteTo(&buf)
			if err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}
			got, err := ReadManifest(&buf)
			if err != nil {
				t.Fatalf("ReadManifest: %v", err)
			}
			if !reflect.DeepEqual(got, man) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, man)
			}
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 200; i++ {
				p := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
				if got.Route(p) != man.Route(p) {
					t.Fatalf("loaded manifest routes %v to %d, original to %d", p, got.Route(p), man.Route(p))
				}
			}
		})
	}
}

// TestManifestRejectsTruncated cuts the stream at several points; every
// prefix must fail loudly, never yield a partial manifest.
func TestManifestRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := grownManifest(t).WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	full := buf.Bytes()
	cuts := []int{0, 1, len(full) / 4, len(full) / 2, len(full) * 9 / 10, len(full) - 1}
	for _, n := range cuts {
		if _, err := ReadManifest(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d/%d bytes: expected an error", n, len(full))
		}
	}
}

// TestManifestRejectsBadVersionAndGarbage covers the self-description
// checks: unknown wire version, zero epoch, and non-gob noise.
func TestManifestRejectsBadVersionAndGarbage(t *testing.T) {
	encode := func(p manifestPayload) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(p); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	good := manifestPayload{
		Version: manifestVersion, Epoch: 1, Kind: int(Hash),
		Members:  []Member{{ID: 1, Name: "a"}},
		NumSlots: 4, Slots: []uint64{1, 1, 1, 1},
	}

	bad := good
	bad.Version = manifestVersion + 41
	if _, err := ReadManifest(bytes.NewReader(encode(bad))); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: err = %v, want a version error", err)
	}
	bad = good
	bad.Epoch = 0
	if _, err := ReadManifest(bytes.NewReader(encode(bad))); err == nil {
		t.Error("epoch 0 must be rejected")
	}
	if _, err := ReadManifest(bytes.NewReader([]byte("not a manifest at all"))); err == nil {
		t.Error("garbage must be rejected")
	}
}

// TestManifestRejectsStructurallyInvalid pins the structural validation a
// coordinator's boot depends on: dangling slot owners, malformed kd
// trees, duplicate members and broken lineage all refuse to load.
func TestManifestRejectsStructurallyInvalid(t *testing.T) {
	cases := map[string]manifestPayload{
		"slot owned by unknown member": {
			Version: manifestVersion, Epoch: 2, Kind: int(Hash),
			Members:  []Member{{ID: 1}},
			NumSlots: 2, Slots: []uint64{1, 9},
		},
		"slot table wrong size": {
			Version: manifestVersion, Epoch: 2, Kind: int(Hash),
			Members:  []Member{{ID: 1}},
			NumSlots: 4, Slots: []uint64{1, 1},
		},
		"duplicate member ids": {
			Version: manifestVersion, Epoch: 2, Kind: int(Hash),
			Members:  []Member{{ID: 1}, {ID: 1}},
			NumSlots: 1, Slots: []uint64{1},
		},
		"member id zero": {
			Version: manifestVersion, Epoch: 2, Kind: int(Hash),
			Members:  []Member{{ID: 0}},
			NumSlots: 1, Slots: []uint64{0},
		},
		"unknown parent": {
			Version: manifestVersion, Epoch: 2, Kind: int(Hash),
			Members:  []Member{{ID: 1, Parent: 7}},
			NumSlots: 1, Slots: []uint64{1},
		},
		"kd leaf names unknown member": {
			Version: manifestVersion, Epoch: 2, Kind: int(KDSplit),
			Members: []Member{{ID: 1}},
			Nodes:   []RouteNode{{Dim: -1, Member: 3}},
		},
		"kd child index out of range": {
			Version: manifestVersion, Epoch: 2, Kind: int(KDSplit),
			Members: []Member{{ID: 1}},
			Nodes:   []RouteNode{{Dim: 0, Cut: 0, Left: 5, Right: 6}},
		},
		"kd cycle": {
			Version: manifestVersion, Epoch: 2, Kind: int(KDSplit),
			Members: []Member{{ID: 1}},
			Nodes:   []RouteNode{{Dim: 0, Left: 0, Right: 0}},
		},
		"kd unreachable node": {
			Version: manifestVersion, Epoch: 2, Kind: int(KDSplit),
			Members: []Member{{ID: 1}},
			Nodes:   []RouteNode{{Dim: -1, Member: 1}, {Dim: -1, Member: 1}},
		},
		"unknown kind": {
			Version: manifestVersion, Epoch: 2, Kind: 42,
			Members: []Member{{ID: 1}},
		},
	}
	for name, p := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(p); err != nil {
				t.Fatalf("encode: %v", err)
			}
			if _, err := ReadManifest(&buf); err == nil {
				t.Error("expected a validation error")
			}
		})
	}
}

// TestApplySplitValidation covers the mutation-side checks that keep a
// manifest consistent while it grows.
func TestApplySplitValidation(t *testing.T) {
	man := grownManifest(t)
	rule := SplitRule{Kind: Hash, NumSlots: man.NumSlots, Slots: man.MemberSlots(1)[:1]}

	if _, err := man.ApplySplit(9, Member{ID: 10}, rule); err == nil {
		t.Error("unknown source member must fail")
	}
	if _, err := man.ApplySplit(1, Member{ID: 2}, rule); err == nil {
		t.Error("reused member id must fail")
	}
	if _, err := man.ApplySplit(1, Member{ID: 10}, SplitRule{Kind: KDSplit, Dim: 0}); err == nil {
		t.Error("rule kind mismatch must fail")
	}
	// Slots the source does not own cannot move.
	foreign := man.MemberSlots(2)[:1]
	if _, err := man.ApplySplit(1, Member{ID: 10},
		SplitRule{Kind: Hash, NumSlots: man.NumSlots, Slots: foreign}); err == nil {
		t.Error("moving a foreign slot must fail")
	}
	// A valid split advances the epoch by exactly one and preserves the
	// original (copy-on-write).
	before := man.Epoch
	man2, err := man.ApplySplit(1, Member{ID: 10}, rule)
	if err != nil {
		t.Fatalf("ApplySplit: %v", err)
	}
	if man2.Epoch != before+1 || man.Epoch != before {
		t.Fatalf("epochs: original %d, split %d (started at %d)", man.Epoch, man2.Epoch, before)
	}
	if man2.Member(10).Parent != 1 {
		t.Fatalf("lineage: parent = %d, want 1", man2.Member(10).Parent)
	}
}

// TestSplitRulePred checks the predicate compilation both routing kinds
// hand to the engine's Split.
func TestSplitRulePred(t *testing.T) {
	pred, err := SplitRule{Kind: Hash, NumSlots: 8, Slots: []uint64{1, 3}}.Pred()
	if err != nil {
		t.Fatalf("hash Pred: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	moved := 0
	for i := 0; i < 400; i++ {
		p := []float64{rng.NormFloat64(), rng.NormFloat64()}
		want := SlotOf(p, 8) == 1 || SlotOf(p, 8) == 3
		if pred(p) != want {
			t.Fatalf("hash pred(%v) = %v, want %v", p, pred(p), want)
		}
		if want {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("hash predicate moved nothing over 400 random points")
	}

	pred, err = SplitRule{Kind: KDSplit, Dim: 1, Cut: 0.25}.Pred()
	if err != nil {
		t.Fatalf("kd Pred: %v", err)
	}
	if !pred([]float64{0, 0.3}) || pred([]float64{0, 0.2}) {
		t.Fatal("kd predicate does not honor the cut")
	}

	if _, err := (SplitRule{Kind: Hash, NumSlots: 0}).Pred(); err == nil {
		t.Error("hash rule without a slot space must fail")
	}
	if _, err := (SplitRule{Kind: Hash, NumSlots: 4, Slots: []uint64{4}}).Pred(); err == nil {
		t.Error("out-of-range slot must fail")
	}
	if _, err := (SplitRule{Kind: KDSplit, Dim: -1}).Pred(); err == nil {
		t.Error("negative kd dim must fail")
	}
}
