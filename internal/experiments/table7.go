package experiments

import (
	"fmt"
	"io"
	"math"

	"karl/internal/bound"
	"karl/internal/dataset"
	"karl/internal/scan"
	"karl/internal/tuning"
)

// QueryType labels the four workloads of Table VII.
type QueryType string

const (
	// TypeIEps is the approximate query I-ε (kernel density, ε = 0.2).
	TypeIEps QueryType = "I-eps"
	// TypeITau is the threshold query I-τ (kernel density, τ = μ).
	TypeITau QueryType = "I-tau"
	// TypeIITau is the threshold query II-τ (1-class SVM).
	TypeIITau QueryType = "II-tau"
	// TypeIIITau is the threshold query III-τ (2-class SVM).
	TypeIIITau QueryType = "III-tau"
)

// Table7Row is one row of Table VII: throughput (queries/sec) per method;
// NaN marks n/a cells, matching the paper's blanks.
type Table7Row struct {
	Type     QueryType
	Dataset  string
	SCAN     float64
	LibSVM   float64
	Scikit   float64
	SOTABest float64
	KARLAuto float64
}

// Table7Result aggregates all rows.
type Table7Result struct {
	Rows []Table7Row
}

// table7Plan lists the paper's dataset-per-querytype layout.
func table7Plan() []struct {
	qt       QueryType
	datasets []string
} {
	return []struct {
		qt       QueryType
		datasets []string
	}{
		{TypeIEps, []string{"miniboone", "home", "susy"}},
		{TypeITau, []string{"miniboone", "home", "susy"}},
		{TypeIITau, []string{"nsl-kdd", "kdd99", "covtype"}},
		{TypeIIITau, []string{"ijcnn1", "a9a", "covtype-b"}},
	}
}

// Table7 regenerates Table VII: throughput of SCAN / LIBSVM / Scikit-best /
// SOTA-best / KARL-auto for the four query types on their datasets.
func Table7(cfg Config, out io.Writer) (*Table7Result, error) {
	cfg = cfg.withDefaults()
	res := &Table7Result{}
	fprintf(out, "Table VII: query throughput (queries/sec)\n")
	fprintf(out, "%-8s %-10s %12s %12s %12s %12s %12s\n",
		"Type", "Dataset", "SCAN", "LIBSVM", "Scikit_best", "SOTA_best", "KARL_auto")
	for _, group := range table7Plan() {
		for _, name := range group.datasets {
			row, err := table7Row(cfg, group.qt, name)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", group.qt, name, err)
			}
			res.Rows = append(res.Rows, row)
			fprintf(out, "%-8s %-10s %12s %12s %12s %12s %12s\n",
				row.Type, row.Dataset, cell(row.SCAN), cell(row.LibSVM),
				cell(row.Scikit), cell(row.SOTABest), cell(row.KARLAuto))
		}
	}
	return res, nil
}

// cell formats a throughput value, rendering NaN as the paper's "n/a".
func cell(v float64) string {
	if v != v { // NaN
		return "n/a"
	}
	return fmt.Sprintf("%.3g", v)
}

// nan is the n/a marker.
func nan() float64 { return math.NaN() }

// table7Row measures one row.
func table7Row(cfg Config, qt QueryType, name string) (Table7Row, error) {
	row := Table7Row{Type: qt, Dataset: name}
	spec, err := dataset.ByName(name)
	if err != nil {
		return row, err
	}
	ds, err := dataset.Generate(spec, cfg.genOptions())
	if err != nil {
		return row, err
	}
	kern := gaussianOf(ds)

	// Resolve the workload parameters.
	w := tuning.Workload{Kernel: kern, Mode: tuning.Threshold}
	switch qt {
	case TypeIEps:
		w.Mode = tuning.Approximate
		w.Eps = 0.2
	case TypeITau:
		mu, _ := exactStats(ds, kern)
		w.Tau = mu
	case TypeIITau, TypeIIITau:
		w.Tau = ds.Tau
	default:
		return row, fmt.Errorf("unknown query type %q", qt)
	}

	// SCAN.
	sc, err := scan.NewScanner(ds.Points, ds.Weights, kern)
	if err != nil {
		return row, err
	}
	if w.Mode == tuning.Threshold {
		row.SCAN, err = cfg.throughput(ds.Queries, func(q []float64) error { sc.Threshold(q, w.Tau); return nil })
	} else {
		row.SCAN, err = cfg.throughput(ds.Queries, func(q []float64) error { sc.Approximate(q, w.Eps); return nil })
	}
	if err != nil {
		return row, err
	}

	// LIBSVM (sparse exact): threshold queries only, as in the paper.
	if w.Mode == tuning.Threshold {
		lib, err := scan.NewLibSVM(ds.Points, ds.Weights, kern)
		if err != nil {
			return row, err
		}
		row.LibSVM, err = cfg.throughput(ds.Queries, func(q []float64) error { lib.Threshold(q, w.Tau); return nil })
		if err != nil {
			return row, err
		}
	} else {
		row.LibSVM = nan()
	}

	// Scikit-best: the SOTA algorithm under its best index, reported only
	// for the approximate KDE query it implements (the paper marks the τ
	// rows n/a).
	if qt == TypeIEps {
		sw := w
		sw.Method = bound.SOTA
		row.Scikit, err = bestIndexed(cfg, ds, sw, ds.Queries)
		if err != nil {
			return row, err
		}
	} else {
		row.Scikit = nan()
	}

	// SOTA-best.
	sw := w
	sw.Method = bound.SOTA
	row.SOTABest, err = bestIndexed(cfg, ds, sw, ds.Queries)
	if err != nil {
		return row, err
	}

	// KARL-auto: offline tuning on a sample, measured on the query set.
	kw := w
	kw.Method = bound.KARL
	row.KARLAuto, err = autoIndexed(cfg, ds, kw, tuneSample(cfg, ds), ds.Queries)
	if err != nil {
		return row, err
	}
	return row, nil
}
