package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment, printing its table/figure to out.
type Runner func(cfg Config, out io.Writer) error

// Registry maps experiment IDs (as listed in DESIGN.md §4) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1": func(cfg Config, out io.Writer) error {
			_, err := Fig1DensityMap(cfg, out)
			return err
		},
		"fig6": func(cfg Config, out io.Writer) error {
			_, err := Fig6BoundTrace(cfg, out)
			return err
		},
		"fig7": func(cfg Config, out io.Writer) error {
			_, err := Fig7LeafCapacity(cfg, out)
			return err
		},
		"tab7": func(cfg Config, out io.Writer) error {
			_, err := Table7(cfg, out)
			return err
		},
		"fig9": func(cfg Config, out io.Writer) error {
			_, err := Fig9ThresholdSweep(cfg, out)
			return err
		},
		"fig10": func(cfg Config, out io.Writer) error {
			_, err := Fig10EpsilonSweep(cfg, out)
			return err
		},
		"fig11": func(cfg Config, out io.Writer) error {
			_, err := Fig11SizeSweep(cfg, out)
			return err
		},
		"fig12": func(cfg Config, out io.Writer) error {
			_, err := Fig12DimSweep(cfg, out)
			return err
		},
		"fig13": func(cfg Config, out io.Writer) error {
			_, err := Fig13Tightness(cfg, out)
			return err
		},
		"tab8": func(cfg Config, out io.Writer) error {
			_, err := Table8OfflineTuning(cfg, out)
			return err
		},
		"tab9": func(cfg Config, out io.Writer) error {
			_, err := Table9InSitu(cfg, out)
			return err
		},
		"tab10": func(cfg Config, out io.Writer) error {
			_, err := Table10Polynomial(cfg, out)
			return err
		},
	}
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string, cfg Config, out io.Writer) error {
	r, ok := Registry()[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg, out)
}
