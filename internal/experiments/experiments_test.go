package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"karl/internal/index"
	"karl/internal/tuning"
)

// tinyConfig keeps the integration suite fast: small datasets, few queries,
// a two-candidate grid.
func tinyConfig() Config {
	return Config{
		Scale:      1e-9, // floors every dataset at its minimum size
		MaxN:       600,
		Queries:    24,
		TuneSample: 10,
		Seed:       7,
		Grid: []tuning.Candidate{
			{Kind: index.KDTree, LeafCap: 20},
			{Kind: index.BallTree, LeafCap: 80},
		},
		DimSweep: []int{4, 8},
	}
}

// mediumConfig is big enough that pruning differences show up: Scale 1
// lets every dataset grow to the MaxN cap.
func mediumConfig() Config {
	return Config{
		Scale:      1,
		MaxN:       4000,
		Queries:    32,
		TuneSample: 12,
		Seed:       7,
		Grid: []tuning.Candidate{
			{Kind: index.KDTree, LeafCap: 40},
		},
		DimSweep: []int{4, 8},
	}
}

func TestRegistryCoversDesignDoc(t *testing.T) {
	want := []string{"fig1", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13", "tab7", "tab8", "tab9", "tab10"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
	if err := Run("not-an-experiment", tinyConfig(), nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig6KARLStopsSooner(t *testing.T) {
	res, err := Fig6BoundTrace(mediumConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KARL) == 0 || len(res.SOTA) == 0 {
		t.Fatal("empty traces")
	}
	if len(res.KARL) > len(res.SOTA) {
		t.Fatalf("KARL trace (%d iters) longer than SOTA (%d) — bounds not tighter",
			len(res.KARL), len(res.SOTA))
	}
	// At iteration 0 (root bounds), KARL's gap must be no wider than SOTA's.
	kGap := res.KARL[0].UB - res.KARL[0].LB
	sGap := res.SOTA[0].UB - res.SOTA[0].LB
	if kGap > sGap*(1+1e-9) {
		t.Fatalf("root gap KARL %v > SOTA %v", kGap, sGap)
	}
}

func TestFig7SweepShape(t *testing.T) {
	res, err := Fig7LeafCapacity(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"home", "susy"} {
		pts := res.Sweeps[name]
		if len(pts) != 14 {
			t.Fatalf("%s: %d sweep points, want 14", name, len(pts))
		}
		for _, p := range pts {
			if p.Throughput <= 0 {
				t.Fatalf("%s: non-positive throughput at %s/%d", name, p.Kind, p.LeafCap)
			}
		}
	}
}

func TestTable7Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := Table7(mediumConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SCAN <= 0 || row.SOTABest <= 0 || row.KARLAuto <= 0 {
			t.Fatalf("%s/%s: non-positive throughput %+v", row.Type, row.Dataset, row)
		}
		// n/a cells must follow the paper's layout.
		isEps := row.Type == TypeIEps
		if isEps != math.IsNaN(row.LibSVM) {
			t.Fatalf("%s/%s: LibSVM n/a layout wrong", row.Type, row.Dataset)
		}
		if isEps == math.IsNaN(row.Scikit) {
			t.Fatalf("%s/%s: Scikit n/a layout wrong", row.Type, row.Dataset)
		}
		switch row.Type {
		case TypeIITau, TypeIIITau:
			// The paper's biggest wins (up to 738×) are the SVM workloads;
			// KARL must beat SOTA outright on every such row, by a wide
			// margin in aggregate (checked below).
			if row.KARLAuto <= row.SOTABest {
				t.Errorf("%s/%s: KARL %v did not beat SOTA %v",
					row.Type, row.Dataset, row.KARLAuto, row.SOTABest)
			}
		default:
			// Type I advantage grows with cardinality (the paper runs
			// 120k–5M points); at this test's 4k-point scale KARL must at
			// least stay within measurement noise of SOTA.
			if row.KARLAuto < row.SOTABest*0.4 {
				t.Errorf("%s/%s: KARL %v collapsed vs SOTA %v",
					row.Type, row.Dataset, row.KARLAuto, row.SOTABest)
			}
		}
	}
	// Aggregate Type II/III margin: geometric mean speedup over SOTA ≥ 3×.
	logSum, count := 0.0, 0
	for _, row := range res.Rows {
		if row.Type == TypeIITau || row.Type == TypeIIITau {
			logSum += math.Log(row.KARLAuto / row.SOTABest)
			count++
		}
	}
	if gm := math.Exp(logSum / float64(count)); gm < 3 {
		t.Fatalf("Type II/III geometric-mean speedup %v < 3", gm)
	}
	if !strings.Contains(buf.String(), "Table VII") {
		t.Fatal("printed output missing header")
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9ThresholdSweep(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"miniboone", "home", "susy"} {
		pts := res.Sweeps[name]
		if len(pts) == 0 {
			t.Fatalf("%s: empty sweep", name)
		}
		if len(pts) > len(fig9Offsets) {
			t.Fatalf("%s: %d points exceed the offset grid", name, len(pts))
		}
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10EpsilonSweep(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, pts := range res.Sweeps {
		if len(pts) != 6 {
			t.Fatalf("%s: %d ε points, want 6", name, len(pts))
		}
	}
}

func TestFig11ThroughputFallsWithSize(t *testing.T) {
	res, err := Fig11SizeSweep(mediumConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tau) != 5 || len(res.Eps) != 5 {
		t.Fatalf("sweep sizes %d/%d, want 5/5", len(res.Tau), len(res.Eps))
	}
	// SCAN throughput must fall monotonically (within noise) as n grows:
	// compare first and last points.
	if res.Tau[0].SCAN <= res.Tau[len(res.Tau)-1].SCAN {
		t.Fatalf("SCAN throughput did not fall with size: %v → %v",
			res.Tau[0].SCAN, res.Tau[len(res.Tau)-1].SCAN)
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := Fig12DimSweep(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d dim points, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.SCAN <= 0 || p.KARLAuto <= 0 {
			t.Fatalf("non-positive throughput at dim %v", p.X)
		}
	}
}

func TestFig13KARLTighter(t *testing.T) {
	res, err := Fig13Tightness(mediumConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("%d rows, want 9", len(res.Rows))
	}
	for _, row := range res.Rows {
		tol := 1e-9 * (1 + row.LBSOTA + row.UBSOTA)
		if row.LBKARL > row.LBSOTA+tol {
			t.Fatalf("%s: KARL LB error %v worse than SOTA %v", row.Dataset, row.LBKARL, row.LBSOTA)
		}
		if row.UBKARL > row.UBSOTA+tol {
			t.Fatalf("%s: KARL UB error %v worse than SOTA %v", row.Dataset, row.UBKARL, row.UBSOTA)
		}
	}
}

func TestTable8AutoNearBest(t *testing.T) {
	res, err := Table8OfflineTuning(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Worst > row.Best {
			t.Fatalf("%s/%s: worst %v exceeds best %v", row.Type, row.Dataset, row.Worst, row.Best)
		}
		if row.Auto < row.Worst-1e-9 || row.Auto > row.Best+1e-9 {
			t.Fatalf("%s/%s: auto %v outside [worst %v, best %v]",
				row.Type, row.Dataset, row.Auto, row.Worst, row.Best)
		}
	}
}

func TestTable9Shape(t *testing.T) {
	res, err := Table9InSitu(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Baseline <= 0 || row.SOTAOnline <= 0 || row.KARLOnline <= 0 {
			t.Fatalf("%s/%s: non-positive throughput %+v", row.Type, row.Dataset, row)
		}
	}
}

func TestTable10Shape(t *testing.T) {
	res, err := Table10Polynomial(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Baseline <= 0 || row.SOTABest <= 0 || row.KARLAuto <= 0 {
			t.Fatalf("%s/%s: non-positive throughput", row.Type, row.Dataset)
		}
	}
}

func TestFig1DensityMap(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig1DensityMap(tinyConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grid) != res.Res*res.Res {
		t.Fatalf("grid size %d for res %d", len(res.Grid), res.Res)
	}
	var max float64
	for _, v := range res.Grid {
		if v < 0 {
			t.Fatalf("negative density %v", v)
		}
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		t.Fatal("density surface is identically zero")
	}
	if !strings.Contains(buf.String(), "peak density") {
		t.Fatal("heatmap output missing")
	}
}
