// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the synthetic stand-in datasets. Each runner
// returns a structured result and can print rows shaped like the paper's;
// cmd/karl-bench and the repository-root benchmarks drive them.
//
// Absolute numbers differ from the paper (different hardware, scaled-down
// synthetic data); the assertions that matter are the shapes: who wins,
// by roughly what factor, and how trends move with τ, ε, n, d and leaf
// capacity. EXPERIMENTS.md records paper-versus-measured for each artifact.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"karl/internal/balltree"
	"karl/internal/core"
	"karl/internal/dataset"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/scan"
	"karl/internal/tuning"
	"karl/internal/vec"
)

// Config scales the experiment suite. The zero value gives a laptop-sized
// run; raise Scale/Queries to approach the paper's setting.
type Config struct {
	// Scale multiplies the paper's dataset cardinalities (default 1/64).
	Scale float64
	// MaxN caps every generated dataset (default 20000).
	MaxN int
	// Queries is the measured query-set size (default 100; paper: 10000).
	Queries int
	// TuneSample is the offline-tuning sample size (default 50; paper: 1000).
	TuneSample int
	// Seed drives all generators (default 1).
	Seed int64
	// MinMeasure is the minimum wall time per throughput cell; the query
	// set is replayed until it elapses, stabilizing small measurements
	// (default 25ms).
	MinMeasure time.Duration
	// Grid is the tuning grid (default: reduced {kd,ball}×{20,80,320}).
	Grid []tuning.Candidate
	// DimSweep is the Figure 12 dimensionality sweep (default {16,32,64,128}
	// on a 128-d mnist stand-in; the paper sweeps to 784).
	DimSweep []int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0 / 64
	}
	if c.MaxN <= 0 {
		c.MaxN = 20000
	}
	if c.Queries <= 0 {
		c.Queries = 100
	}
	if c.TuneSample <= 0 {
		c.TuneSample = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinMeasure <= 0 {
		c.MinMeasure = 25 * time.Millisecond
	}
	if len(c.Grid) == 0 {
		for _, kind := range []index.Kind{index.KDTree, index.BallTree} {
			for _, lc := range []int{20, 80, 320} {
				c.Grid = append(c.Grid, tuning.Candidate{Kind: kind, LeafCap: lc})
			}
		}
	}
	if len(c.DimSweep) == 0 {
		c.DimSweep = []int{16, 32, 64, 128}
	}
	return c
}

// genOptions converts the config into dataset options.
func (c Config) genOptions() dataset.Options {
	return dataset.Options{Scale: c.Scale, MaxN: c.MaxN, Queries: c.Queries, Seed: c.Seed}
}

// throughput measures queries-per-second of fn over the query set,
// replaying the set until minMeasure of wall time has elapsed so that fast
// configurations aren't measured by a handful of microseconds.
func (c Config) throughput(queries *vec.Matrix, fn func(q []float64) error) (float64, error) {
	var total int
	start := time.Now()
	for {
		for i := 0; i < queries.Rows; i++ {
			if err := fn(queries.Row(i)); err != nil {
				return 0, err
			}
		}
		total += queries.Rows
		if time.Since(start) >= c.MinMeasure {
			break
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(total) / elapsed.Seconds(), nil
}

// workloadFn adapts a tuning.Workload to a per-query closure over an engine.
func workloadFn(e *core.Engine, w tuning.Workload) func(q []float64) error {
	if w.Mode == tuning.Threshold {
		return func(q []float64) error {
			_, _, err := e.Threshold(q, w.Tau)
			return err
		}
	}
	return func(q []float64) error {
		_, _, err := e.Approximate(q, w.Eps)
		return err
	}
}

// buildTree constructs one candidate index.
func buildTree(cand tuning.Candidate, pts *vec.Matrix, weights []float64) (*index.Tree, error) {
	if cand.Kind == index.BallTree {
		return balltree.Build(pts, weights, cand.LeafCap)
	}
	return kdtree.Build(pts, weights, cand.LeafCap)
}

// bestIndexed measures every grid candidate directly on the query set and
// returns the best throughput — the paper's SOTAbest / KARLbest / Scikitbest
// columns.
func bestIndexed(cfg Config, ds *dataset.Dataset, w tuning.Workload, queries *vec.Matrix) (float64, error) {
	best := -1.0
	for _, cand := range cfg.Grid {
		tree, err := buildTree(cand, ds.Points, ds.Weights)
		if err != nil {
			return 0, err
		}
		eng, err := core.New(tree, w.Kernel, core.WithMethod(w.Method))
		if err != nil {
			return 0, err
		}
		tp, err := cfg.throughput(queries, workloadFn(eng, w))
		if err != nil {
			return 0, err
		}
		if tp > best {
			best = tp
		}
	}
	return best, nil
}

// autoIndexed tunes on a sample (the KARLauto protocol: pick the candidate
// by sampled throughput) and then measures the winner on the full query
// set.
func autoIndexed(cfg Config, ds *dataset.Dataset, w tuning.Workload, sample, queries *vec.Matrix) (float64, error) {
	results, err := tuning.Offline(ds.Points, ds.Weights, w, sample, cfg.Grid)
	if err != nil {
		return 0, err
	}
	winner := results[0]
	eng, err := core.New(winner.Tree, w.Kernel, core.WithMethod(w.Method))
	if err != nil {
		return 0, err
	}
	return cfg.throughput(queries, workloadFn(eng, w))
}

// tuneSample derives the offline-tuning query sample from the dataset, as
// the paper samples |S|=1000 vectors from each dataset.
func tuneSample(cfg Config, ds *dataset.Dataset) *vec.Matrix {
	return dataset.SampleQueries(ds.Points, cfg.TuneSample, 0.05, cfg.Seed+977)
}

// exactStats computes μ and σ of F_P(q) over the query set — the paper's
// recipe for Type I thresholds (τ = μ, sweeps in μ + kσ).
func exactStats(ds *dataset.Dataset, kern kernel.Params) (mu, sigma float64) {
	s, err := scan.NewScanner(ds.Points, ds.Weights, kern)
	if err != nil {
		return 0, 0
	}
	n := ds.Queries.Rows
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = s.Aggregate(ds.Queries.Row(i))
		mu += vals[i]
	}
	mu /= float64(n)
	for _, v := range vals {
		sigma += (v - mu) * (v - mu)
	}
	sigma = math.Sqrt(sigma / float64(n))
	return mu, sigma
}

// fprintf writes formatted output, ignoring nil writers so runners can be
// called silently from tests.
func fprintf(out io.Writer, format string, args ...any) {
	if out != nil {
		fmt.Fprintf(out, format, args...)
	}
}

// gaussianOf returns the dataset's Gaussian kernel.
func gaussianOf(ds *dataset.Dataset) kernel.Params { return kernel.NewGaussian(ds.Gamma) }
