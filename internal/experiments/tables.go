package experiments

import (
	"io"

	"karl/internal/bound"
	"karl/internal/core"
	"karl/internal/dataset"
	"karl/internal/kernel"
	"karl/internal/scan"
	"karl/internal/tuning"
	"karl/internal/vec"
)

// Table8Row compares tuning outcomes for one workload (Table VIII):
// the worst grid candidate, the auto-tuned pick, and the best candidate,
// all measured on the full query set.
type Table8Row struct {
	Type    QueryType
	Dataset string
	Worst   float64
	Auto    float64
	Best    float64
}

// Table8Result aggregates all rows.
type Table8Result struct {
	Rows []Table8Row
}

// Table8OfflineTuning reproduces Table VIII: KARL_worst / KARL_auto /
// KARL_best using the offline sampling protocol of Section III-C.
func Table8OfflineTuning(cfg Config, out io.Writer) (*Table8Result, error) {
	cfg = cfg.withDefaults()
	res := &Table8Result{}
	fprintf(out, "Table VIII: offline tuning (|S|=%d sample)\n", cfg.TuneSample)
	fprintf(out, "%-8s %-10s %12s %12s %12s\n", "Type", "Dataset", "KARL_worst", "KARL_auto", "KARL_best")
	for _, group := range table7Plan() {
		for _, name := range group.datasets {
			spec, err := dataset.ByName(name)
			if err != nil {
				return nil, err
			}
			ds, err := dataset.Generate(spec, cfg.genOptions())
			if err != nil {
				return nil, err
			}
			kern := gaussianOf(ds)
			w := tuning.Workload{Kernel: kern, Method: bound.KARL, Mode: tuning.Threshold}
			switch group.qt {
			case TypeIEps:
				w.Mode = tuning.Approximate
				w.Eps = 0.2
			case TypeITau:
				mu, _ := exactStats(ds, kern)
				w.Tau = mu
			default:
				w.Tau = ds.Tau
			}
			row, err := table8Row(cfg, ds, w)
			if err != nil {
				return nil, err
			}
			row.Type, row.Dataset = group.qt, name
			res.Rows = append(res.Rows, row)
			fprintf(out, "%-8s %-10s %12.1f %12.1f %12.1f\n",
				row.Type, row.Dataset, row.Worst, row.Auto, row.Best)
		}
	}
	return res, nil
}

func table8Row(cfg Config, ds *dataset.Dataset, w tuning.Workload) (Table8Row, error) {
	var row Table8Row
	// The auto pick uses sampled throughput only.
	sample := tuneSample(cfg, ds)
	tuned, err := tuning.Offline(ds.Points, ds.Weights, w, sample, cfg.Grid)
	if err != nil {
		return row, err
	}
	autoCand := tuned[0].Candidate
	// Re-measure every candidate on the full query set.
	worst, best, auto := -1.0, -1.0, -1.0
	for _, r := range tuned {
		eng, err := core.New(r.Tree, w.Kernel, core.WithMethod(w.Method))
		if err != nil {
			return row, err
		}
		tp, err := cfg.throughput(ds.Queries, workloadFn(eng, w))
		if err != nil {
			return row, err
		}
		if worst < 0 || tp < worst {
			worst = tp
		}
		if tp > best {
			best = tp
		}
		if r.Candidate == autoCand {
			auto = tp
		}
	}
	row.Worst, row.Auto, row.Best = worst, auto, best
	return row, nil
}

// Table9Row compares in-situ solutions for one workload (Table IX):
// the scan baseline and the online-tuned SOTA/KARL end-to-end throughput.
type Table9Row struct {
	Type       QueryType
	Dataset    string
	Baseline   float64
	SOTAOnline float64
	KARLOnline float64
}

// Table9Result aggregates all rows.
type Table9Result struct {
	Rows []Table9Row
}

// Table9InSitu reproduces Table IX: end-to-end throughput (index build +
// tuning + queries) in the in-situ scenario of Section III-C.
func Table9InSitu(cfg Config, out io.Writer) (*Table9Result, error) {
	cfg = cfg.withDefaults()
	res := &Table9Result{}
	fprintf(out, "Table IX: in-situ end-to-end throughput\n")
	fprintf(out, "%-8s %-10s %12s %12s %12s\n", "Type", "Dataset", "baseline", "SOTA_online", "KARL_online")
	for _, group := range table7Plan() {
		for _, name := range group.datasets {
			spec, err := dataset.ByName(name)
			if err != nil {
				return nil, err
			}
			ds, err := dataset.Generate(spec, cfg.genOptions())
			if err != nil {
				return nil, err
			}
			kern := gaussianOf(ds)
			w := tuning.Workload{Kernel: kern, Mode: tuning.Threshold}
			switch group.qt {
			case TypeIEps:
				w.Mode = tuning.Approximate
				w.Eps = 0.2
			case TypeITau:
				mu, _ := exactStats(ds, kern)
				w.Tau = mu
			default:
				w.Tau = ds.Tau
			}
			row := Table9Row{Type: group.qt, Dataset: name}
			// Baseline: plain scan, no index to build.
			sc, err := scan.NewScanner(ds.Points, ds.Weights, kern)
			if err != nil {
				return nil, err
			}
			if w.Mode == tuning.Threshold {
				row.Baseline, err = cfg.throughput(ds.Queries, func(q []float64) error { sc.Threshold(q, w.Tau); return nil })
			} else {
				row.Baseline, err = cfg.throughput(ds.Queries, func(q []float64) error { sc.Approximate(q, w.Eps); return nil })
			}
			if err != nil {
				return nil, err
			}
			sw := w
			sw.Method = bound.SOTA
			sRep, err := tuning.Online(ds.Points, ds.Weights, sw, ds.Queries, 0.05)
			if err != nil {
				return nil, err
			}
			row.SOTAOnline = sRep.Throughput
			kw := w
			kw.Method = bound.KARL
			kRep, err := tuning.Online(ds.Points, ds.Weights, kw, ds.Queries, 0.05)
			if err != nil {
				return nil, err
			}
			row.KARLOnline = kRep.Throughput
			res.Rows = append(res.Rows, row)
			fprintf(out, "%-8s %-10s %12.1f %12.1f %12.1f\n",
				row.Type, row.Dataset, row.Baseline, row.SOTAOnline, row.KARLOnline)
		}
	}
	return res, nil
}

// Table10Row is one polynomial-kernel throughput row (Table X).
type Table10Row struct {
	Type     QueryType
	Dataset  string
	Baseline float64
	SOTABest float64
	KARLAuto float64
}

// Table10Result aggregates all rows.
type Table10Result struct {
	Rows []Table10Row
}

// Table10Polynomial reproduces Table X: II-τ and III-τ throughput with the
// degree-3 polynomial kernel on data normalized to [−1,1]^d, LibSVM's
// default polynomial setting.
func Table10Polynomial(cfg Config, out io.Writer) (*Table10Result, error) {
	cfg = cfg.withDefaults()
	res := &Table10Result{}
	fprintf(out, "Table X: polynomial kernel (degree 3) throughput\n")
	fprintf(out, "%-8s %-10s %12s %12s %12s\n", "Type", "Dataset", "baseline", "SOTA_best", "KARL_auto")
	plan := []struct {
		qt       QueryType
		datasets []string
	}{
		{TypeIITau, []string{"nsl-kdd", "kdd99", "covtype"}},
		{TypeIIITau, []string{"ijcnn1", "a9a", "covtype-b"}},
	}
	for _, group := range plan {
		for _, name := range group.datasets {
			spec, err := dataset.ByName(name)
			if err != nil {
				return nil, err
			}
			ds, err := dataset.Generate(spec, cfg.genOptions())
			if err != nil {
				return nil, err
			}
			// Renormalize to [−1,1]^d as the paper does for poly kernels.
			ds.Points.NormalizeUnit(-1, 1)
			ds.Queries.NormalizeUnit(-1, 1)
			kern := kernel.NewPolynomial(ds.Gamma, 0, 3)
			tau := polyThreshold(ds, kern)
			w := tuning.Workload{Kernel: kern, Mode: tuning.Threshold, Tau: tau}
			row := Table10Row{Type: group.qt, Dataset: name}
			sc, err := scan.NewScanner(ds.Points, ds.Weights, kern)
			if err != nil {
				return nil, err
			}
			row.Baseline, err = cfg.throughput(ds.Queries, func(q []float64) error { sc.Threshold(q, tau); return nil })
			if err != nil {
				return nil, err
			}
			sw := w
			sw.Method = bound.SOTA
			if row.SOTABest, err = bestIndexed(cfg, ds, sw, ds.Queries); err != nil {
				return nil, err
			}
			kw := w
			kw.Method = bound.KARL
			if row.KARLAuto, err = autoIndexed(cfg, ds, kw, tuneSample(cfg, ds), ds.Queries); err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
			fprintf(out, "%-8s %-10s %12.1f %12.1f %12.1f\n",
				row.Type, row.Dataset, row.Baseline, row.SOTABest, row.KARLAuto)
		}
	}
	return res, nil
}

// polyThreshold places τ at the median of F over a query subsample —
// the trained-ρ surrogate for the polynomial kernel.
func polyThreshold(ds *dataset.Dataset, kern kernel.Params) float64 {
	n := ds.Queries.Rows
	if n > 32 {
		n = 32
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = kernel.Aggregate(kern, ds.Queries.Row(i), ds.Points, ds.Weights)
	}
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[j] < vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	return vals[len(vals)/2]
}

// Fig1Result is the rendered density grid of Figure 1.
type Fig1Result struct {
	Res  int
	Grid []float64 // row-major Res×Res
}

// Fig1DensityMap reproduces Figure 1: the kernel density surface over the
// first two dimensions of the miniboone stand-in, evaluated with the
// engine's eKAQ path (every grid cell is one approximate query).
func Fig1DensityMap(cfg Config, out io.Writer) (*Fig1Result, error) {
	cfg = cfg.withDefaults()
	spec, err := dataset.ByName("miniboone")
	if err != nil {
		return nil, err
	}
	ds, err := dataset.Generate(spec, cfg.genOptions())
	if err != nil {
		return nil, err
	}
	kern := gaussianOf(ds)
	tree, err := buildTree(tuning.Candidate{Kind: cfg.Grid[0].Kind, LeafCap: 80}, ds.Points, nil)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(tree, kern, core.WithMethod(bound.KARL))
	if err != nil {
		return nil, err
	}
	const res = 24
	mean := columnMeans(ds.Points)
	grid := make([]float64, res*res)
	q := append([]float64(nil), mean...)
	invN := 1 / float64(ds.Points.Rows)
	for iy := 0; iy < res; iy++ {
		q[1] = float64(iy) / float64(res-1)
		for ix := 0; ix < res; ix++ {
			q[0] = float64(ix) / float64(res-1)
			v, _, err := eng.Approximate(q, 0.1)
			if err != nil {
				return nil, err
			}
			grid[iy*res+ix] = v * invN
		}
	}
	out1 := &Fig1Result{Res: res, Grid: grid}
	fprintf(out, "Figure 1: KDE density surface, miniboone dims 1–2 (%dx%d grid)\n", res, res)
	printHeatmap(out, grid, res)
	return out1, nil
}

// columnMeans returns the per-column mean of a matrix.
func columnMeans(m *vec.Matrix) []float64 {
	mean := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		vec.AddTo(mean, m.Row(i))
	}
	vec.ScaleTo(mean, 1/float64(m.Rows))
	return mean
}

// printHeatmap renders a grid as ASCII shades.
func printHeatmap(out io.Writer, grid []float64, res int) {
	if out == nil {
		return
	}
	var max float64
	for _, v := range grid {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	shades := []byte(" .:-=+*#%@")
	for iy := res - 1; iy >= 0; iy-- {
		line := make([]byte, res)
		for ix := 0; ix < res; ix++ {
			s := int(grid[iy*res+ix] / max * float64(len(shades)-1))
			line[ix] = shades[s]
		}
		fprintf(out, "%s\n", line)
	}
	fprintf(out, "peak density %.4g\n", max)
}
