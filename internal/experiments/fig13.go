package experiments

import (
	"io"
	"math"

	"karl/internal/bound"
	"karl/internal/dataset"
	"karl/internal/kdtree"
	"karl/internal/scan"
)

// TightnessRow reports the averaged relative bound errors of Figure 13 for
// one dataset: Error_LB and Error_UB for both methods.
type TightnessRow struct {
	Dataset string
	Type    dataset.Weighting
	LBSOTA  float64
	LBKARL  float64
	UBSOTA  float64
	UBKARL  float64
}

// Fig13Result holds all rows, grouped as in the paper (Type I, II, III).
type Fig13Result struct {
	Rows []TightnessRow
}

// fig13Datasets lists the datasets of Figure 13 (the nine non-mnist sets).
func fig13Datasets() []string {
	return []string{
		"miniboone", "home", "susy",
		"nsl-kdd", "kdd99", "covtype",
		"ijcnn1", "a9a", "covtype-b",
	}
}

// Fig13Tightness reproduces Figure 13: the level-averaged relative error of
// the lower and upper bound functions on a kd-tree with leaf capacity 80,
//
//	Error = (1/L)·Σ_l |Σ_{R∈level l} bound(q,R) − F_P(q)| / F_P(q)
//
// averaged over the query set, for SOTA and KARL.
func Fig13Tightness(cfg Config, out io.Writer) (*Fig13Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig13Result{}
	fprintf(out, "Figure 13: average bound error per method (kd-tree, leaf 80)\n")
	fprintf(out, "%-10s %-4s %12s %12s %12s %12s\n",
		"dataset", "type", "ErrLB_SOTA", "ErrLB_KARL", "ErrUB_SOTA", "ErrUB_KARL")
	for _, name := range fig13Datasets() {
		spec, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		ds, err := dataset.Generate(spec, cfg.genOptions())
		if err != nil {
			return nil, err
		}
		row, err := tightnessRow(ds)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		fprintf(out, "%-10s %-4s %12.4g %12.4g %12.4g %12.4g\n",
			row.Dataset, row.Type, row.LBSOTA, row.LBKARL, row.UBSOTA, row.UBKARL)
	}
	return res, nil
}

// tightnessRow measures one dataset.
func tightnessRow(ds *dataset.Dataset) (TightnessRow, error) {
	row := TightnessRow{Dataset: ds.Spec.Name, Type: ds.Spec.Weighting}
	kern := gaussianOf(ds)
	tree, err := kdtree.Build(ds.Points, ds.Weights, 80)
	if err != nil {
		return row, err
	}
	sc, err := scan.NewScanner(ds.Points, ds.Weights, kern)
	if err != nil {
		return row, err
	}
	// Cap the number of measured queries; each one walks every tree level.
	nq := ds.Queries.Rows
	if nq > 32 {
		nq = 32
	}
	var lbS, lbK, ubS, ubK float64
	var used int
	for qi := 0; qi < nq; qi++ {
		q := ds.Queries.Row(qi)
		exact := sc.Aggregate(q)
		if math.Abs(exact) < 1e-300 {
			continue // relative error undefined for a vanishing aggregate
		}
		qc := bound.NewQueryCtx(q)
		var sumLBS, sumLBK, sumUBS, sumUBK float64
		levels := 0
		for l := 0; l < tree.Height; l++ {
			var lS, lK, uS, uK float64
			for _, n := range tree.LevelNodes(l) {
				a, b := bound.NodeBounds(bound.SOTA, kern, qc, n)
				lS += a
				uS += b
				a, b = bound.NodeBounds(bound.KARL, kern, qc, n)
				lK += a
				uK += b
			}
			den := math.Abs(exact)
			sumLBS += math.Abs(exact-lS) / den
			sumLBK += math.Abs(exact-lK) / den
			sumUBS += math.Abs(uS-exact) / den
			sumUBK += math.Abs(uK-exact) / den
			levels++
		}
		lbS += sumLBS / float64(levels)
		lbK += sumLBK / float64(levels)
		ubS += sumUBS / float64(levels)
		ubK += sumUBK / float64(levels)
		used++
	}
	if used == 0 {
		return row, nil
	}
	inv := 1 / float64(used)
	row.LBSOTA, row.LBKARL = lbS*inv, lbK*inv
	row.UBSOTA, row.UBKARL = ubS*inv, ubK*inv
	return row, nil
}
