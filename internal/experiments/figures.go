package experiments

import (
	"fmt"
	"io"

	"karl/internal/bound"
	"karl/internal/core"
	"karl/internal/dataset"
	"karl/internal/kde"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/pca"
	"karl/internal/scan"
	"karl/internal/tuning"
)

// Fig6Result holds the bound traces of Figure 6: global lower/upper bounds
// per refinement iteration for SOTA and KARL on one I-τ query.
type Fig6Result struct {
	Tau        float64
	SOTA, KARL []core.TracePoint
}

// Fig6BoundTrace reproduces Figure 6 on the home stand-in: trace the bound
// convergence of both methods on a borderline threshold query.
func Fig6BoundTrace(cfg Config, out io.Writer) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	spec, err := dataset.ByName("home")
	if err != nil {
		return nil, err
	}
	ds, err := dataset.Generate(spec, cfg.genOptions())
	if err != nil {
		return nil, err
	}
	kern := gaussianOf(ds)
	mu, _ := exactStats(ds, kern)
	tree, err := kdtree.Build(ds.Points, ds.Weights, 80)
	if err != nil {
		return nil, err
	}
	q := ds.Queries.Row(0)
	res := &Fig6Result{Tau: mu}
	for _, method := range []bound.Method{bound.SOTA, bound.KARL} {
		eng, err := core.New(tree, kern, core.WithMethod(method))
		if err != nil {
			return nil, err
		}
		trace, err := eng.TraceThreshold(q, mu, 0)
		if err != nil {
			return nil, err
		}
		if method == bound.SOTA {
			res.SOTA = trace
		} else {
			res.KARL = trace
		}
	}
	fprintf(out, "Figure 6: bound values vs iteration (home, I-τ, τ=%.4g)\n", mu)
	fprintf(out, "KARL stops after %d iterations, SOTA after %d\n", len(res.KARL)-1, len(res.SOTA)-1)
	fprintf(out, "%10s %14s %14s %14s %14s\n", "iter", "LB_SOTA", "UB_SOTA", "LB_KARL", "UB_KARL")
	for i := 0; i < len(res.SOTA) || i < len(res.KARL); i += step(len(res.SOTA)) {
		line := fmt.Sprintf("%10d", i)
		if i < len(res.SOTA) {
			line += fmt.Sprintf(" %14.5g %14.5g", res.SOTA[i].LB, res.SOTA[i].UB)
		} else {
			line += fmt.Sprintf(" %14s %14s", "-", "-")
		}
		if i < len(res.KARL) {
			line += fmt.Sprintf(" %14.5g %14.5g", res.KARL[i].LB, res.KARL[i].UB)
		} else {
			line += fmt.Sprintf(" %14s %14s", "-", "-")
		}
		fprintf(out, "%s\n", line)
	}
	return res, nil
}

// step subsamples long traces for printing.
func step(n int) int {
	s := n / 20
	if s < 1 {
		s = 1
	}
	return s
}

// Fig7Point is one (index, leaf capacity) throughput measurement.
type Fig7Point struct {
	Kind       string
	LeafCap    int
	Throughput float64
}

// Fig7Result maps dataset name to its leaf-capacity sweep.
type Fig7Result struct {
	Sweeps map[string][]Fig7Point
}

// Fig7LeafCapacity reproduces Figure 7: KARL I-τ throughput as a function
// of leaf capacity for kd-tree and ball-tree on home and susy.
func Fig7LeafCapacity(cfg Config, out io.Writer) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig7Result{Sweeps: map[string][]Fig7Point{}}
	fprintf(out, "Figure 7: KARL throughput vs leaf capacity (I-τ)\n")
	for _, name := range []string{"home", "susy"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		ds, err := dataset.Generate(spec, cfg.genOptions())
		if err != nil {
			return nil, err
		}
		kern := gaussianOf(ds)
		mu, _ := exactStats(ds, kern)
		w := tuning.Workload{Kernel: kern, Method: bound.KARL, Mode: tuning.Threshold, Tau: mu}
		fprintf(out, "%-8s %-10s %8s %14s\n", "dataset", "index", "leaf", "queries/sec")
		for _, cand := range tuning.DefaultGrid() {
			tree, err := buildTree(cand, ds.Points, ds.Weights)
			if err != nil {
				return nil, err
			}
			eng, err := core.New(tree, kern, core.WithMethod(bound.KARL))
			if err != nil {
				return nil, err
			}
			tp, err := cfg.throughput(ds.Queries, workloadFn(eng, w))
			if err != nil {
				return nil, err
			}
			res.Sweeps[name] = append(res.Sweeps[name], Fig7Point{
				Kind: cand.Kind.String(), LeafCap: cand.LeafCap, Throughput: tp,
			})
			fprintf(out, "%-8s %-10s %8d %14.1f\n", name, cand.Kind, cand.LeafCap, tp)
		}
	}
	return res, nil
}

// SweepPoint is one x→throughput measurement of a parameter sweep, with
// one throughput per method.
type SweepPoint struct {
	X        float64
	SCAN     float64
	SOTABest float64
	KARLAuto float64
}

// Fig9Result maps dataset name to its threshold sweep (x = τ as μ+kσ, the
// k recorded in X).
type Fig9Result struct {
	Sweeps map[string][]SweepPoint
}

// fig9Offsets lists the τ offsets (in σ units) of Figure 9.
var fig9Offsets = []float64{-2, -1, 0, 1, 2, 3, 4}

// Fig9ThresholdSweep reproduces Figure 9: I-τ throughput across thresholds
// μ+kσ on miniboone, home and susy; negative thresholds are skipped exactly
// as the paper skips them for miniboone.
func Fig9ThresholdSweep(cfg Config, out io.Writer) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig9Result{Sweeps: map[string][]SweepPoint{}}
	fprintf(out, "Figure 9: throughput vs threshold (I-τ)\n")
	fprintf(out, "%-10s %8s %12s %12s %12s\n", "dataset", "τ=μ+kσ", "SCAN", "SOTA_best", "KARL_auto")
	for _, name := range []string{"miniboone", "home", "susy"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		ds, err := dataset.Generate(spec, cfg.genOptions())
		if err != nil {
			return nil, err
		}
		kern := gaussianOf(ds)
		mu, sigma := exactStats(ds, kern)
		for _, k := range fig9Offsets {
			tau := mu + k*sigma
			if tau <= 0 {
				continue // the paper skips negative thresholds
			}
			pt, err := sweepPoint(cfg, ds, tuning.Workload{
				Kernel: kern, Mode: tuning.Threshold, Tau: tau,
			}, k)
			if err != nil {
				return nil, err
			}
			res.Sweeps[name] = append(res.Sweeps[name], pt)
			fprintf(out, "%-10s %8.1f %12.1f %12.1f %12.1f\n", name, k, pt.SCAN, pt.SOTABest, pt.KARLAuto)
		}
	}
	return res, nil
}

// Fig10Result maps dataset name to its ε sweep (X = ε).
type Fig10Result struct {
	Sweeps map[string][]SweepPoint
}

// Fig10EpsilonSweep reproduces Figure 10: I-ε throughput across relative
// errors 0.05..0.3.
func Fig10EpsilonSweep(cfg Config, out io.Writer) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig10Result{Sweeps: map[string][]SweepPoint{}}
	fprintf(out, "Figure 10: throughput vs ε (I-ε)\n")
	fprintf(out, "%-10s %8s %12s %12s %12s\n", "dataset", "ε", "SCAN", "SOTA_best", "KARL_auto")
	for _, name := range []string{"miniboone", "home", "susy"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		ds, err := dataset.Generate(spec, cfg.genOptions())
		if err != nil {
			return nil, err
		}
		kern := gaussianOf(ds)
		for _, eps := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3} {
			pt, err := sweepPoint(cfg, ds, tuning.Workload{
				Kernel: kern, Mode: tuning.Approximate, Eps: eps,
			}, eps)
			if err != nil {
				return nil, err
			}
			res.Sweeps[name] = append(res.Sweeps[name], pt)
			fprintf(out, "%-10s %8.2f %12.1f %12.1f %12.1f\n", name, eps, pt.SCAN, pt.SOTABest, pt.KARLAuto)
		}
	}
	return res, nil
}

// sweepPoint measures SCAN / SOTA-best / KARL-auto for one workload.
func sweepPoint(cfg Config, ds *dataset.Dataset, w tuning.Workload, x float64) (SweepPoint, error) {
	pt := SweepPoint{X: x}
	kern := w.Kernel
	sc, err := scan.NewScanner(ds.Points, ds.Weights, kern)
	if err != nil {
		return pt, err
	}
	if w.Mode == tuning.Threshold {
		pt.SCAN, err = cfg.throughput(ds.Queries, func(q []float64) error { sc.Threshold(q, w.Tau); return nil })
	} else {
		pt.SCAN, err = cfg.throughput(ds.Queries, func(q []float64) error { sc.Approximate(q, w.Eps); return nil })
	}
	if err != nil {
		return pt, err
	}
	sw := w
	sw.Method = bound.SOTA
	if pt.SOTABest, err = bestIndexed(cfg, ds, sw, ds.Queries); err != nil {
		return pt, err
	}
	kw := w
	kw.Method = bound.KARL
	if pt.KARLAuto, err = autoIndexed(cfg, ds, kw, tuneSample(cfg, ds), ds.Queries); err != nil {
		return pt, err
	}
	return pt, nil
}

// Fig11Result holds the size sweeps for both query variants (X = n).
type Fig11Result struct {
	Tau []SweepPoint
	Eps []SweepPoint
}

// Fig11SizeSweep reproduces Figure 11: throughput on susy stand-ins of
// growing cardinality for I-τ (τ = μ) and I-ε (ε = 0.2).
func Fig11SizeSweep(cfg Config, out io.Writer) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	spec, err := dataset.ByName("susy")
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	// Five sizes up to the configured cap, mirroring the paper's 1M..5M.
	maxN := cfg.MaxN
	fprintf(out, "Figure 11: throughput vs dataset size (susy)\n")
	fprintf(out, "%-8s %10s %12s %12s %12s\n", "variant", "n", "SCAN", "SOTA_best", "KARL_auto")
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		n := int(float64(maxN) * frac)
		ds, err := dataset.GenerateSized(spec, n, cfg.Queries, cfg.Seed)
		if err != nil {
			return nil, err
		}
		kern := gaussianOf(ds)
		mu, _ := exactStats(ds, kern)
		tp, err := sweepPoint(cfg, ds, tuning.Workload{Kernel: kern, Mode: tuning.Threshold, Tau: mu}, float64(n))
		if err != nil {
			return nil, err
		}
		res.Tau = append(res.Tau, tp)
		fprintf(out, "%-8s %10d %12.1f %12.1f %12.1f\n", "I-tau", n, tp.SCAN, tp.SOTABest, tp.KARLAuto)
		ep, err := sweepPoint(cfg, ds, tuning.Workload{Kernel: kern, Mode: tuning.Approximate, Eps: 0.2}, float64(n))
		if err != nil {
			return nil, err
		}
		res.Eps = append(res.Eps, ep)
		fprintf(out, "%-8s %10d %12.1f %12.1f %12.1f\n", "I-eps", n, ep.SCAN, ep.SOTABest, ep.KARLAuto)
	}
	return res, nil
}

// Fig12Result is the dimensionality sweep (X = d after PCA).
type Fig12Result struct {
	Points []SweepPoint
}

// Fig12DimSweep reproduces Figure 12: I-τ throughput on the mnist stand-in
// reduced to each dimensionality by PCA. The default sweep tops out at 128
// dimensions (the paper's 784-d Jacobi decomposition is minutes of work on
// this substrate; raise Config.DimSweep to match the paper exactly).
func Fig12DimSweep(cfg Config, out io.Writer) (*Fig12Result, error) {
	cfg = cfg.withDefaults()
	maxDim := 0
	for _, d := range cfg.DimSweep {
		if d > maxDim {
			maxDim = d
		}
	}
	spec, err := dataset.ByName("mnist")
	if err != nil {
		return nil, err
	}
	spec.Dim = maxDim
	ds, err := dataset.Generate(spec, cfg.genOptions())
	if err != nil {
		return nil, err
	}
	model, err := pca.Fit(ds.Points)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{}
	fprintf(out, "Figure 12: throughput vs dimensionality (mnist, I-τ)\n")
	fprintf(out, "%8s %12s %12s %12s\n", "dim", "SCAN", "SOTA_best", "KARL_auto")
	for _, dim := range cfg.DimSweep {
		proj, err := model.Transform(ds.Points, dim)
		if err != nil {
			return nil, err
		}
		projQ, err := model.Transform(ds.Queries, dim)
		if err != nil {
			return nil, err
		}
		sub := &dataset.Dataset{Spec: spec, Points: proj, Queries: projQ}
		sub.Points.NormalizeUnit(0, 1)
		sub.Queries.NormalizeUnit(0, 1)
		kern, err := scottOf(sub)
		if err != nil {
			return nil, err
		}
		mu, _ := exactStats(sub, kern)
		pt, err := sweepPoint(cfg, sub, tuning.Workload{Kernel: kern, Mode: tuning.Threshold, Tau: mu}, float64(dim))
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
		fprintf(out, "%8d %12.1f %12.1f %12.1f\n", dim, pt.SCAN, pt.SOTABest, pt.KARLAuto)
	}
	return res, nil
}

// scottOf recomputes Scott's-rule γ for a transformed dataset.
func scottOf(ds *dataset.Dataset) (kernel.Params, error) {
	g, err := kde.ScottGamma(ds.Points)
	if err != nil {
		return kernel.Params{}, err
	}
	ds.Gamma = g
	return kernel.NewGaussian(g), nil
}
