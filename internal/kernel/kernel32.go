package kernel

import (
	"math"

	"karl/internal/vec"
)

// This file is the float32 counterpart of RowsFunc: leaf evaluation over
// the tiled single-precision mirror (vec.Block32) that WithLeafFloat32
// builds. Only the coordinates and the dot-product accumulation are
// single precision — per-row squared norms, weights, the outer kernel
// function and the running aggregate stay float64, so the only error the
// tiles introduce is the rounding of q·p. Bound32Slack turns that
// rounding into an explicit certificate slack computable in O(1) from a
// node's existing (W, B) aggregates, which the engine folds into the
// frontier bounds: the float32 path reports bounds that are valid for the
// exact float64 answer.

// Rows32Func evaluates Σ w_i·K(q, p_i) over rows [start,end) of a float32
// tile block. q32 is the caller-converted float32 query, qNorm2 the exact
// float64 ‖q‖², norms the float64 per-row squared norms of the *original*
// float64 points (so the fused distance form only carries dot-product
// rounding). weights may be nil (w_i = 1).
type Rows32Func func(q32 []float32, qNorm2 float64, blk *vec.Block32, norms, weights []float64, start, end int) float64

// Rows32Evaluator returns the specialized Rows32Func for these parameters;
// like RowsEvaluator, kernel dispatch happens exactly once here and the
// returned function is cached by the engine.
func (p Params) Rows32Evaluator() Rows32Func {
	gamma, beta := p.Gamma, p.Beta
	switch p.Kind {
	case Gaussian:
		return distance32Rows(func(d2 float64) float64 { return math.Exp(-gamma * d2) }, gamma)
	case Epanechnikov:
		return distance32Rows(func(d2 float64) float64 {
			if x := gamma * d2; x < 1 {
				return 1 - x
			}
			return 0
		}, gamma)
	case Quartic:
		return distance32Rows(func(d2 float64) float64 {
			if x := gamma * d2; x < 1 {
				u := 1 - x
				return u * u
			}
			return 0
		}, gamma)
	case Sigmoid:
		return dot32Rows(func(dot float64) float64 { return math.Tanh(gamma*dot + beta) })
	case Polynomial:
		deg := p.Degree
		return dot32Rows(func(dot float64) float64 { return powInt(gamma*dot+beta, deg) })
	default:
		panic("kernel: unknown kind")
	}
}

// laneDot32 computes the float32 dot product of q32 with tiled row r
// (stride-TileRows access) — the scalar fallback for rows outside a full
// tile.
func laneDot32(q32 []float32, data []float32, r, cols int) float64 {
	off := (r/vec.TileRows)*vec.TileRows*cols + r%vec.TileRows
	var d float32
	for j := 0; j < cols; j++ {
		d += q32[j] * data[off+j*vec.TileRows]
	}
	return float64(d)
}

// tileDots32 computes the eight lane dot products of one full tile. The
// tile body is bounds-check free (the re-slice pins an 8-element window)
// and the eight accumulators are independent, so the loop compiles to
// contiguous 8-wide multiply-adds.
func tileDots32(q32 []float32, data []float32, base, cols int, dots *[vec.TileRows]float32) {
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	for j := 0; j < cols; j++ {
		qj := q32[j]
		row := data[base+j*vec.TileRows : base+j*vec.TileRows+vec.TileRows : base+j*vec.TileRows+vec.TileRows]
		s0 += qj * row[0]
		s1 += qj * row[1]
		s2 += qj * row[2]
		s3 += qj * row[3]
		s4 += qj * row[4]
		s5 += qj * row[5]
		s6 += qj * row[6]
		s7 += qj * row[7]
	}
	dots[0], dots[1], dots[2], dots[3] = s0, s1, s2, s3
	dots[4], dots[5], dots[6], dots[7] = s4, s5, s6, s7
}

// distance32Rows builds the tiled evaluator for distance-based kernels
// using the fused form ‖q−p‖² = ‖q‖² − 2·q·p + ‖p‖² with the dot in
// float32 and everything else float64.
func distance32Rows(outer func(d2 float64) float64, _ float64) Rows32Func {
	return func(q32 []float32, qNorm2 float64, blk *vec.Block32, norms, weights []float64, start, end int) float64 {
		var s float64
		cols := blk.Cols
		data := blk.Data
		var dots [vec.TileRows]float32
		i := start
		// Head: scalar lanes up to the first tile boundary.
		for ; i < end && i%vec.TileRows != 0; i++ {
			d2 := qNorm2 - 2*laneDot32(q32, data, i, cols) + norms[i]
			if d2 < 0 {
				d2 = 0 // guard float cancellation
			}
			if weights == nil {
				s += outer(d2)
			} else {
				s += weights[i] * outer(d2)
			}
		}
		// Body: full tiles. The distance assembly runs as its own pass over
		// a pinned 8-element window so it vectorizes independently of the
		// scalar outer-function loop that follows.
		var d2s [vec.TileRows]float64
		for ; i+vec.TileRows <= end; i += vec.TileRows {
			tileDots32(q32, data, (i/vec.TileRows)*vec.TileRows*cols, cols, &dots)
			nrm := norms[i : i+vec.TileRows : i+vec.TileRows]
			for l := 0; l < vec.TileRows; l++ {
				d2 := qNorm2 - 2*float64(dots[l]) + nrm[l]
				if d2 < 0 {
					d2 = 0 // guard float cancellation
				}
				d2s[l] = d2
			}
			if weights == nil {
				for l := 0; l < vec.TileRows; l++ {
					s += outer(d2s[l])
				}
			} else {
				wts := weights[i : i+vec.TileRows : i+vec.TileRows]
				for l := 0; l < vec.TileRows; l++ {
					s += wts[l] * outer(d2s[l])
				}
			}
		}
		// Tail: scalar lanes of the final partial tile.
		for ; i < end; i++ {
			d2 := qNorm2 - 2*laneDot32(q32, data, i, cols) + norms[i]
			if d2 < 0 {
				d2 = 0
			}
			if weights == nil {
				s += outer(d2)
			} else {
				s += weights[i] * outer(d2)
			}
		}
		return s
	}
}

// dot32Rows builds the tiled evaluator for dot-product kernels.
func dot32Rows(outer func(dot float64) float64) Rows32Func {
	return func(q32 []float32, _ float64, blk *vec.Block32, _, weights []float64, start, end int) float64 {
		var s float64
		cols := blk.Cols
		data := blk.Data
		var dots [vec.TileRows]float32
		i := start
		for ; i < end && i%vec.TileRows != 0; i++ {
			if weights == nil {
				s += outer(laneDot32(q32, data, i, cols))
			} else {
				s += weights[i] * outer(laneDot32(q32, data, i, cols))
			}
		}
		for ; i+vec.TileRows <= end; i += vec.TileRows {
			tileDots32(q32, data, (i/vec.TileRows)*vec.TileRows*cols, cols, &dots)
			for l := 0; l < vec.TileRows; l++ {
				if weights == nil {
					s += outer(float64(dots[l]))
				} else {
					s += weights[i+l] * outer(float64(dots[l]))
				}
			}
		}
		for ; i < end; i++ {
			if weights == nil {
				s += outer(laneDot32(q32, data, i, cols))
			} else {
				s += weights[i] * outer(laneDot32(q32, data, i, cols))
			}
		}
		return s
	}
}

// Bound32Slack returns the coefficient c of the float32 leaf-evaluation
// error bound
//
//	|F32(node) − F64(node)| ≤ c · (W·‖q‖² + B)
//
// where W = Σ|w_i| and B = Σ|w_i|·‖p_i‖² are the node aggregates the
// index already maintains. Derivation: the only single-precision quantity
// is the dot product q·p, whose error is at most
// (d+2)·2⁻²⁴·‖q‖·‖p‖ (one rounding each for the q and p conversions plus
// ≤ d for the float32 accumulation); via 2·‖q‖·‖p‖ ≤ ‖q‖²+‖p‖² the scalar
// argument of the kernel then moves by at most γ·(d+2)·2⁻²⁴·(‖q‖²+‖p‖²)
// (both the γ·d² and γ·q·p+β forms carry the dot with weight γ and 2·γ
// respectively — the 2 is absorbed by the Cauchy–Schwarz step for the
// distance form and by the safety factor below for the dot form), and the
// kernel value by at most Lip times that, with Lip the Lipschitz constant
// of the outer function over the reachable scalar range: 1 for Gaussian
// (|−e⁻ˣ| ≤ 1 on x ≥ 0), 1 for Epanechnikov, 2 for quartic, 1 for
// sigmoid, and deg·max|x|^(deg−1) for polynomial, where max|x| is bounded
// via the query norm and maxNorm2, the largest ‖p‖² in the tiled block.
// Summing |w_i|·ΔK_i over the node gives the bound above. The returned c
// carries a 2× safety factor on top of the algebra.
func (p Params) Bound32Slack(dims int, qNorm2, maxNorm2 float64) float64 {
	errC := float64(dims+4) * 0x1p-24
	lip := 1.0
	switch p.Kind {
	case Quartic:
		lip = 2
	case Polynomial:
		xmax := p.Gamma*math.Sqrt(qNorm2*maxNorm2) + math.Abs(p.Beta) + 1
		lip = float64(p.Degree) * powInt(xmax, p.Degree-1)
	}
	return 2 * lip * p.Gamma * errC
}
