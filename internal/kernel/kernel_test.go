package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"karl/internal/vec"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Gaussian: "gaussian", Polynomial: "polynomial", Sigmoid: "sigmoid", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q want %q", int(k), got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := NewGaussian(0.5).Validate(); err != nil {
		t.Fatalf("valid gaussian rejected: %v", err)
	}
	if err := NewGaussian(0).Validate(); err == nil {
		t.Fatal("gamma=0 accepted")
	}
	if err := NewPolynomial(1, 0, 0).Validate(); err == nil {
		t.Fatal("degree=0 accepted")
	}
	if err := NewPolynomial(1, 1, 3).Validate(); err != nil {
		t.Fatalf("valid polynomial rejected: %v", err)
	}
	if err := NewSigmoid(0.1, -1).Validate(); err != nil {
		t.Fatalf("valid sigmoid rejected: %v", err)
	}
	if err := (Params{Kind: Kind(7), Gamma: 1}).Validate(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestGaussianEvalKnown(t *testing.T) {
	p := NewGaussian(0.5)
	q := []float64{0, 0}
	x := []float64{1, 1} // dist² = 2 → exp(−1)
	if got, want := p.Eval(q, x), math.Exp(-1); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Eval = %v want %v", got, want)
	}
	// Same point → kernel value 1.
	if got := p.Eval(q, q); got != 1 {
		t.Fatalf("Eval(q,q) = %v want 1", got)
	}
}

func TestPolynomialEvalKnown(t *testing.T) {
	p := NewPolynomial(2, 1, 3)
	q := []float64{1, 2}
	x := []float64{3, 4} // q·x = 11 → (2·11+1)³ = 23³
	if got, want := p.Eval(q, x), 23.0*23*23; got != want {
		t.Fatalf("Eval = %v want %v", got, want)
	}
}

func TestSigmoidEvalKnown(t *testing.T) {
	p := NewSigmoid(1, 0)
	q := []float64{1, 0}
	x := []float64{1, 0}
	if got, want := p.Eval(q, x), math.Tanh(1); got != want {
		t.Fatalf("Eval = %v want %v", got, want)
	}
}

func TestPowIntMatchesMathPow(t *testing.T) {
	f := func(xRaw float64, nRaw uint8) bool {
		x := math.Mod(xRaw, 10)
		n := int(nRaw % 9)
		got := powInt(x, n)
		want := math.Pow(x, float64(n))
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowIntNegativeExponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	powInt(2, -1)
}

func TestOuterDerivNumerically(t *testing.T) {
	params := []Params{
		NewGaussian(1),
		NewPolynomial(1, 0, 2),
		NewPolynomial(1, 0, 3),
		NewPolynomial(1, 0, 5),
		NewSigmoid(1, 0),
	}
	rng := rand.New(rand.NewSource(3))
	const h = 1e-6
	for _, p := range params {
		for trial := 0; trial < 50; trial++ {
			x := rng.NormFloat64() * 2
			want := (p.Outer(x+h) - p.Outer(x-h)) / (2 * h)
			got := p.OuterDeriv(x)
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%v: OuterDeriv(%v) = %v, numeric %v", p.Kind, x, got, want)
			}
		}
	}
}

func TestScalarFactorization(t *testing.T) {
	// Eval must equal Outer∘Scalar for all kernels on random pairs.
	rng := rand.New(rand.NewSource(5))
	params := []Params{NewGaussian(0.7), NewPolynomial(0.3, 1, 3), NewSigmoid(0.2, -0.5)}
	for _, p := range params {
		for trial := 0; trial < 30; trial++ {
			d := 1 + rng.Intn(8)
			q, x := make([]float64, d), make([]float64, d)
			for j := 0; j < d; j++ {
				q[j], x[j] = rng.NormFloat64(), rng.NormFloat64()
			}
			if got, want := p.Eval(q, x), p.Outer(p.Scalar(q, x)); got != want {
				t.Fatalf("%v: Eval %v != Outer(Scalar) %v", p.Kind, got, want)
			}
		}
	}
}

func TestAggregateMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := vec.NewMatrix(40, 5)
	w := make([]float64, 40)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	q := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	p := NewGaussian(1.5)
	var want float64
	for i := 0; i < m.Rows; i++ {
		want += w[i] * p.Eval(q, m.Row(i))
	}
	if got := Aggregate(p, q, m, w); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Aggregate = %v want %v", got, want)
	}
	// nil weights = unit weights.
	var wantUnit float64
	for i := 0; i < m.Rows; i++ {
		wantUnit += p.Eval(q, m.Row(i))
	}
	if got := Aggregate(p, q, m, nil); math.Abs(got-wantUnit) > 1e-12 {
		t.Fatalf("Aggregate(nil) = %v want %v", got, wantUnit)
	}
}

func TestAggregateRowsMatchesEvalLoop(t *testing.T) {
	// Every kernel's specialized range evaluator — with and without the
	// squared-norm cache, with and without weights — must agree with a naive
	// per-point Eval loop up to the rounding of the fused distance form.
	rng := rand.New(rand.NewSource(13))
	params := []Params{
		NewGaussian(2), NewEpanechnikov(0.4), NewQuartic(0.3),
		NewPolynomial(0.3, 1, 3), NewSigmoid(0.2, -0.5),
	}
	for _, p := range params {
		for trial := 0; trial < 10; trial++ {
			n, d := 1+rng.Intn(25), 1+rng.Intn(6)
			m := vec.NewMatrix(n, d)
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
			w := make([]float64, n)
			norms := make([]float64, n)
			for i := 0; i < n; i++ {
				w[i] = rng.NormFloat64()
				norms[i] = vec.Norm2(m.Row(i))
			}
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			start := rng.Intn(n)
			end := start + rng.Intn(n-start+1)
			var want, wantUnit float64
			for i := start; i < end; i++ {
				v := p.Eval(q, m.Row(i))
				want += w[i] * v
				wantUnit += v
			}
			tol := 1e-9 * (1 + math.Abs(want) + math.Abs(wantUnit))
			rows := p.RowsEvaluator()
			qn := vec.Norm2(q)
			for _, cached := range [][]float64{nil, norms} {
				if got := rows(q, qn, m, cached, w, start, end); math.Abs(got-want) > tol {
					t.Fatalf("%v (norms=%v): rows = %v want %v", p.Kind, cached != nil, got, want)
				}
				if got := rows(q, qn, m, cached, nil, start, end); math.Abs(got-wantUnit) > tol {
					t.Fatalf("%v (norms=%v): unit rows = %v want %v", p.Kind, cached != nil, got, wantUnit)
				}
			}
			// Split ranges must sum to the full range.
			if end > start {
				mid := start + (end-start)/2
				sum := AggregateRows(p, q, m, norms, w, start, mid) +
					AggregateRows(p, q, m, norms, w, mid, end)
				if math.Abs(sum-want) > tol {
					t.Fatalf("%v: split sum = %v want %v", p.Kind, sum, want)
				}
			}
		}
	}
	// Empty range contributes nothing.
	m := vec.NewMatrix(3, 2)
	if got := AggregateRows(NewGaussian(1), []float64{0, 0}, m, nil, nil, 1, 1); got != 0 {
		t.Fatalf("empty range = %v want 0", got)
	}
}

func TestFusedDistanceGuardsCancellation(t *testing.T) {
	// When q equals a stored point, ‖q‖²−2q·p+‖p‖² can round slightly
	// negative; the evaluator must clamp so exp(−γ·d²) never exceeds 1.
	q := []float64{1e8, 1e-8, 3.14159}
	m := vec.FromRows([][]float64{q})
	norms := []float64{vec.Norm2(q)}
	rows := NewGaussian(1000).RowsEvaluator()
	if got := rows(q, vec.Norm2(q), m, norms, nil, 0, 1); got > 1 || math.IsNaN(got) {
		t.Fatalf("self-distance kernel value = %v, want ≤ 1", got)
	}
}
