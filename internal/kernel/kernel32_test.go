package kernel

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/vec"
)

// rows64Ref evaluates Σ w_i·K(q,p_i) over a range with the float64
// evaluator — the reference the tiled float32 path is checked against.
func rows64Ref(p Params, q []float64, m *vec.Matrix, norms, w []float64, start, end int) float64 {
	return p.RowsEvaluator()(q, vec.Norm2(q), m, norms, w, start, end)
}

// slackBudget is the engine's frontier slack for a row range:
// Bound32Slack(d, ‖q‖², maxNorm2) · (W·‖q‖² + B) with W = Σ|w_i| and
// B = Σ|w_i|·‖p_i‖² — exactly what Forest.frontierEval folds into the
// bounds via the node aggregates.
func slackBudget(p Params, q []float64, blk *vec.Block32, norms, w []float64, start, end int) float64 {
	var W, B float64
	for i := start; i < end; i++ {
		aw := 1.0
		if w != nil {
			aw = math.Abs(w[i])
		}
		W += aw
		B += aw * norms[i]
	}
	return p.Bound32Slack(blk.Cols, vec.Norm2(q), blk.MaxNorm2) * (W*vec.Norm2(q) + B)
}

// TestRows32WithinSlack is the certificate the float32 leaf path rests on:
// for every kernel family and weighting type, over ranges of every
// head/body/tail alignment, the tiled float32 sum differs from the float64
// sum by no more than the slack the engine widens its bounds by.
func TestRows32WithinSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(812))
	kernels := []Params{
		NewGaussian(4),
		NewEpanechnikov(0.8),
		NewQuartic(0.6),
		NewSigmoid(0.35, -0.2),
		NewPolynomial(0.4, 0.7, 3),
	}
	for _, n := range []int{1, 5, 8, 13, 40, 200} {
		d := 1 + rng.Intn(9)
		m := vec.NewMatrix(n, d)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		norms := make([]float64, n)
		for i := 0; i < n; i++ {
			norms[i] = vec.Norm2(m.Row(i))
		}
		blk := vec.NewBlock32(m)
		weightings := [][]float64{nil}
		wpos := make([]float64, n)
		wmix := make([]float64, n)
		for i := 0; i < n; i++ {
			wpos[i] = rng.Float64() + 0.05
			wmix[i] = rng.NormFloat64()
		}
		weightings = append(weightings, wpos, wmix)
		q := make([]float64, d)
		q32 := make([]float32, d)
		for j := range q {
			q[j] = rng.NormFloat64()
			q32[j] = float32(q[j])
		}
		for _, p := range kernels {
			ev32 := p.Rows32Evaluator()
			for _, w := range weightings {
				// Ranges exercising head-only, tail-only, straddling and
				// full-block alignments.
				ranges := [][2]int{{0, n}, {0, n / 2}, {n / 2, n}, {n / 3, 2 * n / 3}}
				for _, r := range ranges {
					start, end := r[0], r[1]
					if start >= end {
						continue
					}
					got := ev32(q32, vec.Norm2(q), blk, norms, w, start, end)
					want := rows64Ref(p, q, m, norms, w, start, end)
					slack := slackBudget(p, q, blk, norms, w, start, end)
					if math.Abs(got-want) > slack {
						t.Fatalf("%v n=%d d=%d w=%v range=[%d,%d): |%v - %v| = %v > slack %v",
							p.Kind, n, d, w != nil, start, end, got, want, math.Abs(got-want), slack)
					}
				}
			}
		}
	}
}

// TestRows32RangeAdditivity: summing two adjacent ranges must equal the
// full range exactly when the split lands on a tile boundary (the body
// loop is then identical), which the engine relies on when leaves abut.
func TestRows32TileBoundarySplit(t *testing.T) {
	rng := rand.New(rand.NewSource(813))
	n, d := 64, 4
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	norms := make([]float64, n)
	for i := 0; i < n; i++ {
		norms[i] = vec.Norm2(m.Row(i))
	}
	blk := vec.NewBlock32(m)
	q := make([]float64, d)
	q32 := make([]float32, d)
	for j := range q {
		q[j] = rng.NormFloat64()
		q32[j] = float32(q[j])
	}
	p := NewGaussian(2)
	ev := p.Rows32Evaluator()
	full := ev(q32, vec.Norm2(q), blk, norms, nil, 0, n)
	split := ev(q32, vec.Norm2(q), blk, norms, nil, 0, 32) + ev(q32, vec.Norm2(q), blk, norms, nil, 32, n)
	if math.Abs(full-split) > 1e-12*(1+math.Abs(full)) {
		t.Fatalf("tile-boundary split diverged: %v vs %v", full, split)
	}
}

// TestBound32SlackMonotone pins basic sanity of the slack coefficient: it
// is positive, grows with dimensionality, and for the polynomial kernel
// grows with the reachable scalar range.
func TestBound32SlackMonotone(t *testing.T) {
	g := NewGaussian(3)
	if g.Bound32Slack(4, 1, 1) <= 0 {
		t.Fatal("slack must be positive")
	}
	if g.Bound32Slack(16, 1, 1) <= g.Bound32Slack(4, 1, 1) {
		t.Fatal("slack must grow with dims")
	}
	p := NewPolynomial(0.5, 0.1, 4)
	if p.Bound32Slack(4, 100, 100) <= p.Bound32Slack(4, 1, 1) {
		t.Fatal("polynomial slack must grow with the scalar range")
	}
}
