// Package kernel defines the kernel functions supported by KARL — Gaussian,
// polynomial, and sigmoid (Section II and Section IV-B of the paper) — and
// exact weighted kernel aggregation, the quantity F_P(q) = Σ w_i K(q, p_i)
// that every query variant bounds or computes.
//
// Each kernel factors as K(q,p) = Outer(Scalar(q,p)) where Scalar is either
// γ·dist(q,p)² (Gaussian) or γ·q·p + β (polynomial, sigmoid) and Outer is a
// scalar function (exp(−x), x^deg, tanh(x)). KARL's linear bounds operate on
// the Outer function over an interval of Scalar values; the factorization
// lives here so the bound and engine packages share one definition.
package kernel

import (
	"fmt"
	"math"

	"karl/internal/vec"
)

// Kind enumerates the supported kernel families.
type Kind int

const (
	// Gaussian is K(q,p) = exp(−γ·dist(q,p)²).
	Gaussian Kind = iota
	// Polynomial is K(q,p) = (γ·q·p + β)^Degree.
	Polynomial
	// Sigmoid is K(q,p) = tanh(γ·q·p + β).
	Sigmoid
	// Epanechnikov is K(q,p) = max(0, 1 − γ·dist(q,p)²), the
	// mean-square-optimal KDE kernel. Its outer function is piecewise
	// linear and convex, so KARL's chord/tangent bounds are extremely
	// tight (an extension beyond the paper's three kernels).
	Epanechnikov
	// Quartic is the biweight kernel K(q,p) = max(0, 1 − γ·dist(q,p)²)²,
	// also convex in the scalar argument.
	Quartic
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Polynomial:
		return "polynomial"
	case Sigmoid:
		return "sigmoid"
	case Epanechnikov:
		return "epanechnikov"
	case Quartic:
		return "quartic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params fully specifies a kernel. Beta and Degree are ignored by the
// Gaussian kernel; Degree is ignored by the sigmoid kernel.
type Params struct {
	Kind   Kind
	Gamma  float64
	Beta   float64
	Degree int
}

// NewGaussian returns Gaussian kernel parameters.
func NewGaussian(gamma float64) Params { return Params{Kind: Gaussian, Gamma: gamma} }

// NewPolynomial returns polynomial kernel parameters.
func NewPolynomial(gamma, beta float64, degree int) Params {
	return Params{Kind: Polynomial, Gamma: gamma, Beta: beta, Degree: degree}
}

// NewSigmoid returns sigmoid kernel parameters.
func NewSigmoid(gamma, beta float64) Params {
	return Params{Kind: Sigmoid, Gamma: gamma, Beta: beta}
}

// NewEpanechnikov returns Epanechnikov kernel parameters.
func NewEpanechnikov(gamma float64) Params { return Params{Kind: Epanechnikov, Gamma: gamma} }

// NewQuartic returns quartic (biweight) kernel parameters.
func NewQuartic(gamma float64) Params { return Params{Kind: Quartic, Gamma: gamma} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Gamma <= 0 {
		return fmt.Errorf("kernel: gamma must be positive, got %v", p.Gamma)
	}
	if p.Kind == Polynomial && p.Degree < 1 {
		return fmt.Errorf("kernel: polynomial degree must be >= 1, got %d", p.Degree)
	}
	switch p.Kind {
	case Gaussian, Polynomial, Sigmoid, Epanechnikov, Quartic:
		return nil
	default:
		return fmt.Errorf("kernel: unknown kind %d", int(p.Kind))
	}
}

// DistanceBased reports whether the kernel's scalar argument is γ·dist²
// (true) or γ·q·p+β (false).
func (p Params) DistanceBased() bool {
	switch p.Kind {
	case Gaussian, Epanechnikov, Quartic:
		return true
	default:
		return false
	}
}

// Scalar returns the inner scalar x for the pair (q, pt): γ·dist(q,pt)² for
// the Gaussian kernel and γ·q·pt+β for the dot-product kernels.
func (p Params) Scalar(q, pt []float64) float64 {
	if p.DistanceBased() {
		return p.Gamma * vec.Dist2(q, pt)
	}
	return p.Gamma*vec.Dot(q, pt) + p.Beta
}

// Outer evaluates the outer scalar function at x.
func (p Params) Outer(x float64) float64 {
	switch p.Kind {
	case Gaussian:
		return math.Exp(-x)
	case Polynomial:
		return powInt(x, p.Degree)
	case Sigmoid:
		return math.Tanh(x)
	case Epanechnikov:
		if x >= 1 {
			return 0
		}
		return 1 - x
	case Quartic:
		if x >= 1 {
			return 0
		}
		u := 1 - x
		return u * u
	default:
		panic("kernel: unknown kind")
	}
}

// OuterDeriv evaluates the derivative of the outer scalar function at x.
// Used by the tangent-based bounds.
func (p Params) OuterDeriv(x float64) float64 {
	switch p.Kind {
	case Gaussian:
		return -math.Exp(-x)
	case Polynomial:
		return float64(p.Degree) * powInt(x, p.Degree-1)
	case Sigmoid:
		th := math.Tanh(x)
		return 1 - th*th
	case Epanechnikov:
		// Subgradient at the kink x = 1; the bound machinery only uses
		// derivatives inside smooth regions.
		if x >= 1 {
			return 0
		}
		return -1
	case Quartic:
		if x >= 1 {
			return 0
		}
		return -2 * (1 - x)
	default:
		panic("kernel: unknown kind")
	}
}

// Eval returns K(q, pt).
func (p Params) Eval(q, pt []float64) float64 { return p.Outer(p.Scalar(q, pt)) }

// powInt computes x^n for n ≥ 0 by binary exponentiation; exact for the
// small integer degrees SVMs use and faster than math.Pow.
func powInt(x float64, n int) float64 {
	if n < 0 {
		panic("kernel: negative exponent")
	}
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
		n >>= 1
	}
	return r
}

// Aggregate computes the exact kernel aggregation Σ_i w_i·K(q, rows[i])
// over all rows of m. weights may be nil, meaning w_i = 1.
func Aggregate(p Params, q []float64, m *vec.Matrix, weights []float64) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		v := p.Eval(q, m.Row(i))
		if weights != nil {
			v *= weights[i]
		}
		s += v
	}
	return s
}

// AggregateRange computes Σ w_{idx[i]}·K(q, m.Row(idx[i])) for i in
// [start,end) of an index permutation — the leaf-refinement primitive.
// weights may be nil.
func AggregateRange(p Params, q []float64, m *vec.Matrix, weights []float64, idx []int, start, end int) float64 {
	var s float64
	for i := start; i < end; i++ {
		j := idx[i]
		v := p.Eval(q, m.Row(j))
		if weights != nil {
			v *= weights[j]
		}
		s += v
	}
	return s
}
