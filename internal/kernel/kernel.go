// Package kernel defines the kernel functions supported by KARL — Gaussian,
// polynomial, and sigmoid (Section II and Section IV-B of the paper) — and
// exact weighted kernel aggregation, the quantity F_P(q) = Σ w_i K(q, p_i)
// that every query variant bounds or computes.
//
// Each kernel factors as K(q,p) = Outer(Scalar(q,p)) where Scalar is either
// γ·dist(q,p)² (Gaussian) or γ·q·p + β (polynomial, sigmoid) and Outer is a
// scalar function (exp(−x), x^deg, tanh(x)). KARL's linear bounds operate on
// the Outer function over an interval of Scalar values; the factorization
// lives here so the bound and engine packages share one definition.
package kernel

import (
	"fmt"
	"math"

	"karl/internal/vec"
)

// Kind enumerates the supported kernel families.
type Kind int

const (
	// Gaussian is K(q,p) = exp(−γ·dist(q,p)²).
	Gaussian Kind = iota
	// Polynomial is K(q,p) = (γ·q·p + β)^Degree.
	Polynomial
	// Sigmoid is K(q,p) = tanh(γ·q·p + β).
	Sigmoid
	// Epanechnikov is K(q,p) = max(0, 1 − γ·dist(q,p)²), the
	// mean-square-optimal KDE kernel. Its outer function is piecewise
	// linear and convex, so KARL's chord/tangent bounds are extremely
	// tight (an extension beyond the paper's three kernels).
	Epanechnikov
	// Quartic is the biweight kernel K(q,p) = max(0, 1 − γ·dist(q,p)²)²,
	// also convex in the scalar argument.
	Quartic
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Polynomial:
		return "polynomial"
	case Sigmoid:
		return "sigmoid"
	case Epanechnikov:
		return "epanechnikov"
	case Quartic:
		return "quartic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params fully specifies a kernel. Beta and Degree are ignored by the
// Gaussian kernel; Degree is ignored by the sigmoid kernel.
type Params struct {
	Kind   Kind
	Gamma  float64
	Beta   float64
	Degree int
}

// NewGaussian returns Gaussian kernel parameters.
func NewGaussian(gamma float64) Params { return Params{Kind: Gaussian, Gamma: gamma} }

// NewPolynomial returns polynomial kernel parameters.
func NewPolynomial(gamma, beta float64, degree int) Params {
	return Params{Kind: Polynomial, Gamma: gamma, Beta: beta, Degree: degree}
}

// NewSigmoid returns sigmoid kernel parameters.
func NewSigmoid(gamma, beta float64) Params {
	return Params{Kind: Sigmoid, Gamma: gamma, Beta: beta}
}

// NewEpanechnikov returns Epanechnikov kernel parameters.
func NewEpanechnikov(gamma float64) Params { return Params{Kind: Epanechnikov, Gamma: gamma} }

// NewQuartic returns quartic (biweight) kernel parameters.
func NewQuartic(gamma float64) Params { return Params{Kind: Quartic, Gamma: gamma} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Gamma <= 0 {
		return fmt.Errorf("kernel: gamma must be positive, got %v", p.Gamma)
	}
	if p.Kind == Polynomial && p.Degree < 1 {
		return fmt.Errorf("kernel: polynomial degree must be >= 1, got %d", p.Degree)
	}
	switch p.Kind {
	case Gaussian, Polynomial, Sigmoid, Epanechnikov, Quartic:
		return nil
	default:
		return fmt.Errorf("kernel: unknown kind %d", int(p.Kind))
	}
}

// DistanceBased reports whether the kernel's scalar argument is γ·dist²
// (true) or γ·q·p+β (false).
func (p Params) DistanceBased() bool {
	switch p.Kind {
	case Gaussian, Epanechnikov, Quartic:
		return true
	default:
		return false
	}
}

// Scalar returns the inner scalar x for the pair (q, pt): γ·dist(q,pt)² for
// the Gaussian kernel and γ·q·pt+β for the dot-product kernels.
func (p Params) Scalar(q, pt []float64) float64 {
	if p.DistanceBased() {
		return p.Gamma * vec.Dist2(q, pt)
	}
	return p.Gamma*vec.Dot(q, pt) + p.Beta
}

// Outer evaluates the outer scalar function at x.
func (p Params) Outer(x float64) float64 {
	switch p.Kind {
	case Gaussian:
		return math.Exp(-x)
	case Polynomial:
		return powInt(x, p.Degree)
	case Sigmoid:
		return math.Tanh(x)
	case Epanechnikov:
		if x >= 1 {
			return 0
		}
		return 1 - x
	case Quartic:
		if x >= 1 {
			return 0
		}
		u := 1 - x
		return u * u
	default:
		panic("kernel: unknown kind")
	}
}

// OuterDeriv evaluates the derivative of the outer scalar function at x.
// Used by the tangent-based bounds.
func (p Params) OuterDeriv(x float64) float64 {
	switch p.Kind {
	case Gaussian:
		return -math.Exp(-x)
	case Polynomial:
		return float64(p.Degree) * powInt(x, p.Degree-1)
	case Sigmoid:
		th := math.Tanh(x)
		return 1 - th*th
	case Epanechnikov:
		// Subgradient at the kink x = 1; the bound machinery only uses
		// derivatives inside smooth regions.
		if x >= 1 {
			return 0
		}
		return -1
	case Quartic:
		if x >= 1 {
			return 0
		}
		return -2 * (1 - x)
	default:
		panic("kernel: unknown kind")
	}
}

// Eval returns K(q, pt).
func (p Params) Eval(q, pt []float64) float64 { return p.Outer(p.Scalar(q, pt)) }

// powInt computes x^n for n ≥ 0 by binary exponentiation; exact for the
// small integer degrees SVMs use and faster than math.Pow.
func powInt(x float64, n int) float64 {
	if n < 0 {
		panic("kernel: negative exponent")
	}
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
		n >>= 1
	}
	return r
}

// RowsFunc evaluates the exact weighted kernel aggregation
// Σ w_i·K(q, m.Row(i)) over the contiguous row range [start,end) — the
// single exact-evaluation primitive behind leaf refinement, Engine.Exact
// and the scan baseline. qNorm2 is the caller-computed ‖q‖². norms, when
// non-nil, carries the per-row squared norms ‖p_i‖² and enables the fused
// distance form ‖q−p‖² = ‖q‖² − 2·q·p + ‖p‖², turning the inner loop into
// a dot product plus a norm lookup. weights may be nil (w_i = 1).
type RowsFunc func(q []float64, qNorm2 float64, m *vec.Matrix, norms, weights []float64, start, end int) float64

// RowsEvaluator returns the specialized RowsFunc for these parameters. The
// kernel dispatch happens exactly once, here — the returned function runs
// dispatch-free, so callers on the query hot path hoist it out of the scan
// loop (the engine caches it at construction).
func (p Params) RowsEvaluator() RowsFunc {
	gamma, beta := p.Gamma, p.Beta
	switch p.Kind {
	case Gaussian:
		return distanceRows(gamma, func(d2 float64) float64 { return math.Exp(-gamma * d2) })
	case Epanechnikov:
		return distanceRows(gamma, func(d2 float64) float64 {
			if x := gamma * d2; x < 1 {
				return 1 - x
			}
			return 0
		})
	case Quartic:
		return distanceRows(gamma, func(d2 float64) float64 {
			if x := gamma * d2; x < 1 {
				u := 1 - x
				return u * u
			}
			return 0
		})
	case Sigmoid:
		return dotRows(func(dot float64) float64 { return math.Tanh(gamma*dot + beta) })
	case Polynomial:
		deg := p.Degree
		return dotRows(func(dot float64) float64 { return powInt(gamma*dot+beta, deg) })
	default:
		panic("kernel: unknown kind")
	}
}

// distanceRows builds the range evaluator for distance-based kernels. outer
// maps the squared distance (not yet scaled by γ — the closure does that) to
// the kernel value. With norms available the squared distance comes from the
// fused three-term form; otherwise it falls back to a direct subtraction
// loop, which is also the reference the fused form is tested against.
func distanceRows(_ float64, outer func(d2 float64) float64) RowsFunc {
	return func(q []float64, qNorm2 float64, m *vec.Matrix, norms, weights []float64, start, end int) float64 {
		var s float64
		if norms != nil {
			cols := m.Cols
			data := m.Data
			if weights == nil {
				for i := start; i < end; i++ {
					row := data[i*cols : i*cols+cols]
					d2 := qNorm2 - 2*vec.Dot(q, row) + norms[i]
					if d2 < 0 {
						d2 = 0 // guard float cancellation
					}
					s += outer(d2)
				}
				return s
			}
			for i := start; i < end; i++ {
				row := data[i*cols : i*cols+cols]
				d2 := qNorm2 - 2*vec.Dot(q, row) + norms[i]
				if d2 < 0 {
					d2 = 0
				}
				s += weights[i] * outer(d2)
			}
			return s
		}
		if weights == nil {
			for i := start; i < end; i++ {
				s += outer(vec.Dist2(q, m.Row(i)))
			}
			return s
		}
		for i := start; i < end; i++ {
			s += weights[i] * outer(vec.Dist2(q, m.Row(i)))
		}
		return s
	}
}

// dotRows builds the range evaluator for dot-product kernels; norms are
// irrelevant for these.
func dotRows(outer func(dot float64) float64) RowsFunc {
	return func(q []float64, _ float64, m *vec.Matrix, _, weights []float64, start, end int) float64 {
		var s float64
		cols := m.Cols
		data := m.Data
		if weights == nil {
			for i := start; i < end; i++ {
				s += outer(vec.Dot(q, data[i*cols:i*cols+cols]))
			}
			return s
		}
		for i := start; i < end; i++ {
			s += weights[i] * outer(vec.Dot(q, data[i*cols:i*cols+cols]))
		}
		return s
	}
}

// AggregateRows is the one-shot form of RowsEvaluator for callers off the
// hot path.
func AggregateRows(p Params, q []float64, m *vec.Matrix, norms, weights []float64, start, end int) float64 {
	return p.RowsEvaluator()(q, vec.Norm2(q), m, norms, weights, start, end)
}

// Aggregate computes the exact kernel aggregation Σ_i w_i·K(q, rows[i])
// over all rows of m. weights may be nil, meaning w_i = 1. It routes
// through the same range primitive as leaf refinement (without a norm
// cache, so distance kernels use the direct subtraction form).
func Aggregate(p Params, q []float64, m *vec.Matrix, weights []float64) float64 {
	return AggregateRows(p, q, m, nil, weights, 0, m.Rows)
}
