// Package coreset constructs reduced weighted point sets ("sketches")
// whose kernel aggregates track the full set's: for a source set P with
// weights w_i (total W = Σ w_i) it returns a set S with weights u_j
// (total W_S = W) such that the normalized aggregates satisfy
//
//	|F_P(q)/W − F_S(q)/W_S| ≤ ε,
//
// with |S| ≪ |P| — the data-reduction lever that is complementary to
// KARL's per-node bounds.
//
// The ε bound is NOT a uniform deterministic guarantee; its nature depends
// on the construction and is recorded in Sketch.Basis so consumers can
// tell. The sampling constructions (Uniform, Sensitivity) satisfy the
// bound per query with probability ≥ 1−δ (Hoeffding; δ is Sketch.Delta),
// not uniformly over all queries. The Halving construction's bound is
// empirical: each halving round is accepted only if the measured error on
// a held-out validation sample stays under ε/2, so out-of-sample queries —
// especially far from the data and its bounding box — can exceed ε.
// Three constructions are provided:
//
//   - Uniform: uniform sampling with a Hoeffding-style size selection,
//     the Type I (identical weights) baseline.
//   - Halving: a discrepancy-driven merge-halving in the spirit of
//     Phillips & Tai ("Near-Optimal Coresets of Kernel Density
//     Estimates"): points are paired spatially, one point of each pair is
//     discarded by a greedy self-balancing sign choice, and the survivor
//     inherits the pair's weight. Halving rounds continue while an
//     empirical validation of the normalized error (with a 2× safety
//     margin) stays inside ε, so the construction adapts to the data and
//     typically lands far below the sampling sizes.
//   - Sensitivity: importance sampling proportional to the weights, the
//     Type II (arbitrary positive weights) construction; the normalized
//     estimate is an average of i.i.d. [0,1] kernel values, so the same
//     Hoeffding size applies.
//
// All constructions require a distance-based kernel (Gaussian,
// Epanechnikov, quartic) whose values lie in [0,1] — the boundedness the
// guarantees rest on — and non-negative weights (Type I/II). Mixed-sign
// (Type III) sets are rejected: near-cancelling aggregates admit no
// normalized-error reduction of this kind.
package coreset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"karl/internal/kernel"
	"karl/internal/vec"
)

// Method enumerates the constructions.
type Method int

const (
	// Auto picks Halving for identical weights and Sensitivity otherwise.
	Auto Method = iota
	// Uniform is uniform sampling with Hoeffding size selection (Type I).
	Uniform
	// Halving is the discrepancy/merge-halving construction (Type I).
	Halving
	// Sensitivity is weight-proportional importance sampling (Type II).
	Sensitivity
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Auto:
		return "auto"
	case Uniform:
		return "uniform"
	case Halving:
		return "halving"
	case Sensitivity:
		return "sensitivity"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod converts a method name to its Method value.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "auto":
		return Auto, nil
	case "uniform":
		return Uniform, nil
	case "halving":
		return Halving, nil
	case "sensitivity":
		return Sensitivity, nil
	}
	return 0, fmt.Errorf("coreset: unknown method %q (want auto, uniform, halving or sensitivity)", s)
}

// Basis labels the nature of a sketch's ε bound (see the package comment:
// none of the constructions yields a uniform deterministic guarantee).
type Basis string

const (
	// BasisExact marks an identity sketch (S = P): zero error,
	// deterministic. Produced when ε permits no reduction.
	BasisExact Basis = "exact"
	// BasisHoeffding marks a sampling construction: the ε bound holds per
	// query with probability ≥ 1−δ (Sketch.Delta), not uniformly over
	// queries.
	BasisHoeffding Basis = "hoeffding"
	// BasisEmpirical marks the halving construction: ε was validated on a
	// held-out query sample with a 2× margin, not proved; out-of-sample
	// queries can exceed it.
	BasisEmpirical Basis = "empirical"
)

// Sketch is a reduced weighted point set with its error guarantee.
type Sketch struct {
	// Points are the coreset points (owned by the sketch).
	Points *vec.Matrix
	// Weights are the per-point weights; they sum to SourceW.
	Weights []float64
	// Eps is the advertised normalized error bound ε. Basis records what
	// kind of bound it is — high-probability per query or empirically
	// validated, never a uniform deterministic guarantee.
	Eps float64
	// Delta is the per-query failure probability δ behind Eps when Basis
	// is BasisHoeffding; 0 otherwise.
	Delta float64
	// Basis labels the nature of the Eps bound.
	Basis Basis
	// SourceN and SourceW record the cardinality and total weight of the
	// source set (the sketch's provenance).
	SourceN int
	// SourceW is the total weight Σ w_i of the source set.
	SourceW float64
	// Method is the construction that produced the sketch.
	Method Method
}

// Len returns the coreset cardinality.
func (s *Sketch) Len() int { return s.Points.Rows }

// Config tunes a construction. The zero value is usable.
type Config struct {
	// Method selects the construction (default Auto).
	Method Method
	// Delta is the per-query failure probability behind the sampling
	// sizes (default 1e-3).
	Delta float64
	// Seed seeds the construction's randomness (default 1).
	Seed int64
	// MinSize floors the coreset cardinality (default 32).
	MinSize int
}

func (c Config) withDefaults() Config {
	if c.Delta <= 0 {
		c.Delta = 1e-3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinSize <= 0 {
		c.MinSize = 32
	}
	return c
}

// hoeffdingSize returns the sample size m with ln(2/δ)/(2ε²) ≤ m, which by
// Hoeffding's inequality makes the mean of m i.i.d. [0,1] kernel values
// deviate from its expectation by more than ε with probability ≤ δ.
func hoeffdingSize(eps, delta float64) int {
	return int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
}

// weightClass inspects the source weights: identical (Type I), positive
// (Type II) or negative/invalid.
func weightClass(weights []float64, n int) (identical bool, total float64, err error) {
	if weights == nil {
		return true, float64(n), nil
	}
	total = 0
	identical = true
	hasNeg, hasPos := false, false
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return false, 0, fmt.Errorf("coreset: weight %d is not finite (%v)", i, w)
		}
		if w < 0 {
			hasNeg = true
		}
		if w > 0 {
			hasPos = true
		}
		if w != weights[0] {
			identical = false
		}
		total += w
	}
	if hasNeg {
		if hasPos {
			return false, 0, errors.New("coreset: mixed-sign (Type III) weights are not sketchable: near-cancelling aggregates admit no normalized-error guarantee")
		}
		return false, 0, errors.New("coreset: negative weights are not sketchable: the normalized-error model needs non-negative (Type I/II) weights")
	}
	if total <= 0 {
		return false, 0, errors.New("coreset: total weight must be positive")
	}
	return identical, total, nil
}

// Build constructs a sketch of (points, weights) for the kernel with
// normalized error bound eps. weights may be nil (unit weights, Type I).
func Build(points *vec.Matrix, weights []float64, kern kernel.Params, eps float64, cfg Config) (*Sketch, error) {
	if points == nil || points.Rows == 0 {
		return nil, errors.New("coreset: empty point set")
	}
	if weights != nil && len(weights) != points.Rows {
		return nil, fmt.Errorf("coreset: %d weights for %d points", len(weights), points.Rows)
	}
	if err := kern.Validate(); err != nil {
		return nil, err
	}
	if !kern.DistanceBased() {
		return nil, fmt.Errorf("coreset: %v kernel is not distance-based; the ε guarantee needs kernel values in [0,1]", kern.Kind)
	}
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("coreset: eps must be in (0,1), got %v", eps)
	}
	cfg = cfg.withDefaults()
	identical, total, err := weightClass(weights, points.Rows)
	if err != nil {
		return nil, err
	}
	method := cfg.Method
	if method == Auto {
		if identical {
			method = Halving
		} else {
			method = Sensitivity
		}
	}
	switch method {
	case Uniform:
		if !identical {
			return nil, errors.New("coreset: uniform sampling needs identical (Type I) weights; use sensitivity for weighted sets")
		}
		return uniformSketch(points, total, eps, cfg)
	case Halving:
		return halvingSketch(points, weights, total, kern, eps, cfg)
	case Sensitivity:
		return sensitivitySketch(points, weights, total, eps, cfg)
	default:
		return nil, fmt.Errorf("coreset: unknown method %d", int(method))
	}
}

// full returns the identity sketch (the source set itself), used when the
// requested guarantee does not permit any reduction.
func full(points *vec.Matrix, weights []float64, total float64, eps float64, method Method) *Sketch {
	w := make([]float64, points.Rows)
	if weights == nil {
		per := total / float64(points.Rows)
		for i := range w {
			w[i] = per
		}
	} else {
		copy(w, weights)
	}
	return &Sketch{
		Points:  points.Clone(),
		Weights: w,
		Eps:     eps,
		Basis:   BasisExact,
		SourceN: points.Rows,
		SourceW: total,
		Method:  method,
	}
}

// uniformSketch samples m = ln(2/δ)/(2ε²) points without replacement, each
// carrying weight W/m. The normalized estimate is the sample mean of
// kernel values in [0,1]; Hoeffding (and Serfling's sharpening for
// sampling without replacement) gives the ε guarantee per query.
func uniformSketch(points *vec.Matrix, total, eps float64, cfg Config) (*Sketch, error) {
	n := points.Rows
	m := hoeffdingSize(eps, cfg.Delta)
	if m < cfg.MinSize {
		m = cfg.MinSize
	}
	if m >= n {
		return full(points, nil, total, eps, Uniform), nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := rng.Perm(n)[:m]
	out := vec.NewMatrix(m, points.Cols)
	w := make([]float64, m)
	per := total / float64(m)
	for j, i := range idx {
		copy(out.Row(j), points.Row(i))
		w[j] = per
	}
	return &Sketch{Points: out, Weights: w, Eps: eps, Delta: cfg.Delta, Basis: BasisHoeffding,
		SourceN: n, SourceW: total, Method: Uniform}, nil
}

// sensitivitySketch draws m points i.i.d. with probability proportional to
// their weight (the sensitivity upper bound for bounded kernels: point i
// can contribute at most w_i/W to the normalized aggregate). Each draw's
// kernel value is an unbiased [0,1] estimate of F_P(q)/W, so the Hoeffding
// size applies; duplicate draws merge by weight.
func sensitivitySketch(points *vec.Matrix, weights []float64, total, eps float64, cfg Config) (*Sketch, error) {
	n := points.Rows
	m := hoeffdingSize(eps, cfg.Delta)
	if m < cfg.MinSize {
		m = cfg.MinSize
	}
	if m >= n {
		return full(points, weights, total, eps, Sensitivity), nil
	}
	// Cumulative weight table for O(log n) categorical draws.
	cum := make([]float64, n)
	run := 0.0
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		run += w
		cum[i] = run
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	per := total / float64(m)
	counts := make(map[int]int, m)
	for j := 0; j < m; j++ {
		r := rng.Float64() * run
		i := sort.SearchFloat64s(cum, r)
		if i == n {
			i = n - 1
		}
		counts[i]++
	}
	out := vec.NewMatrix(len(counts), points.Cols)
	w := make([]float64, 0, len(counts))
	row := 0
	// Deterministic output order for reproducible builds.
	keys := make([]int, 0, len(counts))
	for i := range counts {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	for _, i := range keys {
		copy(out.Row(row), points.Row(i))
		w = append(w, per*float64(counts[i]))
		row++
	}
	return &Sketch{Points: out, Weights: w, Eps: eps, Delta: cfg.Delta, Basis: BasisHoeffding,
		SourceN: n, SourceW: total, Method: Sensitivity}, nil
}

// validation bundles the fixed query set and exact normalized answers the
// halving construction validates against.
const (
	nAnchors    = 64  // anchor queries steering the greedy sign choice
	nValidation = 256 // validation queries gating each halving round
	safety      = 2.0 // a round must keep the measured error under ε/safety
)

// halvingSketch repeatedly halves the set: points are ordered spatially by
// recursive median splits, consecutive points are paired, and a greedy
// self-balancing sign choice keeps one point per pair (the survivor
// inherits the pair's combined weight). After each candidate round the
// normalized error against the source set is measured on a held-out query
// sample; rounds continue while the measured error stays under ε/2, so the
// advertised bound carries a 2× empirical safety margin.
func halvingSketch(points *vec.Matrix, weights []float64, total float64, kern kernel.Params, eps float64, cfg Config) (*Sketch, error) {
	n := points.Rows
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Working copy: survivors and their weights.
	cur := points.Clone()
	curW := make([]float64, n)
	if weights == nil {
		for i := range curW {
			curW[i] = total / float64(n)
		}
	} else {
		copy(curW, weights)
	}

	queries := validationQueries(points, rng)
	exact := make([]float64, len(queries))
	for i, q := range queries {
		exact[i] = normalizedAggregate(kern, q, points, weights, total)
	}
	anchors := make([][]float64, nAnchors)
	for i := range anchors {
		anchors[i] = vec.Clone(points.Row(rng.Intn(n)))
	}

	for cur.Rows/2 >= cfg.MinSize {
		nextP, nextW := halveOnce(cur, curW, kern, anchors)
		worst := 0.0
		for i, q := range queries {
			got := normalizedAggregate(kern, q, nextP, nextW, total)
			if d := math.Abs(got - exact[i]); d > worst {
				worst = d
			}
		}
		if worst > eps/safety {
			break
		}
		cur, curW = nextP, nextW
	}
	basis := BasisEmpirical
	if cur.Rows == n {
		basis = BasisExact // no round was accepted: S = P
	}
	return &Sketch{Points: cur, Weights: curW, Eps: eps, Basis: basis,
		SourceN: n, SourceW: total, Method: Halving}, nil
}

// validationQueries samples the query domain: half jittered data points,
// half uniform draws from the bounding box — the same families a density
// workload probes.
func validationQueries(points *vec.Matrix, rng *rand.Rand) [][]float64 {
	_, std := points.ColumnStats()
	mins, maxs := bounds(points)
	out := make([][]float64, 0, nValidation)
	for i := 0; i < nValidation; i++ {
		q := make([]float64, points.Cols)
		if i%2 == 0 {
			copy(q, points.Row(rng.Intn(points.Rows)))
			for j := range q {
				q[j] += rng.NormFloat64() * std[j] * 0.25
			}
		} else {
			for j := range q {
				q[j] = mins[j] + rng.Float64()*(maxs[j]-mins[j])
			}
		}
		out = append(out, q)
	}
	return out
}

func bounds(points *vec.Matrix) (mins, maxs []float64) {
	mins = make([]float64, points.Cols)
	maxs = make([]float64, points.Cols)
	copy(mins, points.Row(0))
	copy(maxs, points.Row(0))
	for i := 1; i < points.Rows; i++ {
		for j, v := range points.Row(i) {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	return mins, maxs
}

// normalizedAggregate returns F(q)/W for the weighted set.
func normalizedAggregate(kern kernel.Params, q []float64, points *vec.Matrix, weights []float64, total float64) float64 {
	return kernel.Aggregate(kern, q, points, weights) / total
}

// halveOnce executes one pairing-and-discard round. Survivor selection is
// the greedy self-balancing walk: per pair, keep whichever point moves the
// running signed discrepancy (tracked at the anchor queries) closer to
// zero. An odd trailing point survives untouched.
func halveOnce(points *vec.Matrix, weights []float64, kern kernel.Params, anchors [][]float64) (*vec.Matrix, []float64) {
	n := points.Rows
	order := spatialOrder(points)
	disc := make([]float64, len(anchors))
	kept := make([]int, 0, n/2+1)
	keptW := make([]float64, 0, n/2+1)

	kp := make([]float64, len(anchors))
	kr := make([]float64, len(anchors))
	for i := 0; i+1 < n; i += 2 {
		p, r := order[i], order[i+1]
		wp, wr := weights[p], weights[r]
		for a, q := range anchors {
			kp[a] = kern.Eval(q, points.Row(p))
			kr[a] = kern.Eval(q, points.Row(r))
		}
		// Keeping p changes the aggregate at anchor a by wr·(kp−kr);
		// keeping r by wp·(kr−kp). Pick the smaller resulting ‖disc‖².
		costP, costR := 0.0, 0.0
		for a := range anchors {
			dp := disc[a] + wr*(kp[a]-kr[a])
			dr := disc[a] + wp*(kr[a]-kp[a])
			costP += dp * dp
			costR += dr * dr
		}
		if costP <= costR {
			kept = append(kept, p)
			keptW = append(keptW, wp+wr)
			for a := range anchors {
				disc[a] += wr * (kp[a] - kr[a])
			}
		} else {
			kept = append(kept, r)
			keptW = append(keptW, wp+wr)
			for a := range anchors {
				disc[a] += wp * (kr[a] - kp[a])
			}
		}
	}
	if n%2 == 1 {
		last := order[n-1]
		kept = append(kept, last)
		keptW = append(keptW, weights[last])
	}
	out := vec.NewMatrix(len(kept), points.Cols)
	for j, i := range kept {
		copy(out.Row(j), points.Row(i))
	}
	return out, keptW
}

// spatialOrder returns a permutation in which consecutive points are
// spatially close: a kd-style recursive median split along the widest
// dimension, read off in order. Pairing consecutive points of this order
// makes each discarded point's survivor a near neighbour, which is what
// keeps the halving discrepancy small.
func spatialOrder(points *vec.Matrix) []int {
	idx := make([]int, points.Rows)
	for i := range idx {
		idx[i] = i
	}
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo <= 2 {
			return
		}
		// Widest dimension over the slice.
		d := points.Cols
		best, bestSpan := 0, -1.0
		for j := 0; j < d; j++ {
			mn, mx := points.Row(idx[lo])[j], points.Row(idx[lo])[j]
			for i := lo + 1; i < hi; i++ {
				v := points.Row(idx[i])[j]
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			if span := mx - mn; span > bestSpan {
				best, bestSpan = j, span
			}
		}
		sort.Slice(idx[lo:hi], func(a, b int) bool {
			return points.Row(idx[lo+a])[best] < points.Row(idx[lo+b])[best]
		})
		// Split on an even boundary so pairs never straddle the cut.
		mid := lo + ((hi-lo)/2+1)/2*2
		if mid <= lo || mid >= hi {
			return
		}
		rec(lo, mid)
		rec(mid, hi)
	}
	rec(0, points.Rows)
	return idx
}
