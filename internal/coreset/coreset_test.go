package coreset

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"karl/internal/kernel"
	"karl/internal/scan"
	"karl/internal/vec"
)

// Three seeded dataset shapes: clustered cloud, shell, heavy-tailed
// mixture with diffuse background — the Type I stand-in families of the
// experiment layer, reduced.
func clusterCloud(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		base := float64(i%3) * 0.3
		for j := 0; j < d; j++ {
			m.Row(i)[j] = base + rng.Float64()*0.2
		}
	}
	return m
}

func shellCloud(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := m.Row(i)
		var norm float64
		for j := range r {
			r[j] = rng.NormFloat64()
			norm += r[j] * r[j]
		}
		norm = math.Sqrt(norm)
		rad := 0.4 + 0.05*rng.NormFloat64()
		for j := range r {
			r[j] = 0.5 + r[j]/norm*rad
		}
	}
	return m
}

func mixtureCloud(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := m.Row(i)
		if i%4 == 0 { // diffuse background
			for j := range r {
				r[j] = rng.Float64()
			}
			continue
		}
		c := float64(i % 5)
		scale := 0.02 * math.Exp(rng.NormFloat64()*0.5)
		for j := range r {
			r[j] = 0.15 + c*0.17 + rng.NormFloat64()*scale
		}
	}
	return m
}

// sampleQueries mirrors a density workload: jittered data points plus
// uniform draws over the bounding box.
func sampleQueries(rng *rand.Rand, points *vec.Matrix, n int) [][]float64 {
	_, std := points.ColumnStats()
	mins, maxs := bounds(points)
	out := make([][]float64, n)
	for i := range out {
		q := make([]float64, points.Cols)
		if i%2 == 0 {
			copy(q, points.Row(rng.Intn(points.Rows)))
			for j := range q {
				q[j] += rng.NormFloat64() * std[j] * 0.3
			}
		} else {
			for j := range q {
				q[j] = mins[j] + rng.Float64()*(maxs[j]-mins[j])
			}
		}
		out[i] = q
	}
	return out
}

func totalWeight(weights []float64, n int) float64 {
	if weights == nil {
		return float64(n)
	}
	var s float64
	for _, w := range weights {
		s += w
	}
	return s
}

// checkEpsProperty asserts the advertised normalized bound holds at ≥ 99%
// of sampled queries against the exact scan oracle, and reports the
// failure fraction.
func checkEpsProperty(t *testing.T, points *vec.Matrix, weights []float64, kern kernel.Params, sk *Sketch, queries [][]float64) {
	t.Helper()
	oracle, err := scan.NewScanner(points, weights, kern)
	if err != nil {
		t.Fatal(err)
	}
	srcW := totalWeight(weights, points.Rows)
	skW := totalWeight(sk.Weights, sk.Len())
	if math.Abs(skW-srcW) > 1e-6*srcW {
		t.Fatalf("sketch weight %v does not preserve source weight %v", skW, srcW)
	}
	var bad int
	worst := 0.0
	for _, q := range queries {
		exact := oracle.Aggregate(q) / srcW
		got := kernel.Aggregate(kern, q, sk.Points, sk.Weights) / skW
		if d := math.Abs(got - exact); d > sk.Eps {
			bad++
			if d > worst {
				worst = d
			}
		}
	}
	if frac := float64(bad) / float64(len(queries)); frac > 0.01 {
		t.Fatalf("ε=%v violated at %.1f%% of %d queries (worst error %v)", sk.Eps, frac*100, len(queries), worst)
	}
}

// TestPropertyNormalizedError is the subsystem's acceptance property: for
// Type I and Type II over three seeded dataset shapes, each construction's
// density estimates satisfy the advertised ε at ≥ 99% of sampled queries.
func TestPropertyNormalizedError(t *testing.T) {
	n := 6000
	if testing.Short() {
		n = 1500
	}
	gens := []struct {
		name string
		gen  func(*rand.Rand, int, int) *vec.Matrix
	}{
		{"cluster", clusterCloud},
		{"shell", shellCloud},
		{"mixture", mixtureCloud},
	}
	kern := kernel.NewGaussian(40)
	for si, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + si)))
			points := g.gen(rng, n, 4)
			queries := sampleQueries(rng, points, 400)

			// Type I: uniform and halving.
			for _, method := range []Method{Uniform, Halving} {
				sk, err := Build(points, nil, kern, 0.1, Config{Method: method, Seed: int64(si + 1)})
				if err != nil {
					t.Fatalf("%v: %v", method, err)
				}
				if sk.SourceN != n || sk.Method != method {
					t.Fatalf("%v: provenance %d/%v", method, sk.SourceN, sk.Method)
				}
				checkEpsProperty(t, points, nil, kern, sk, queries)
			}

			// Type II: positive weights, sensitivity sampling.
			w := make([]float64, n)
			for i := range w {
				w[i] = 0.1 + rng.Float64()*3
			}
			sk, err := Build(points, w, kern, 0.1, Config{Method: Sensitivity, Seed: int64(si + 7)})
			if err != nil {
				t.Fatal(err)
			}
			checkEpsProperty(t, points, w, kern, sk, queries)

			// Auto resolves by weight class.
			skAuto, err := Build(points, nil, kern, 0.15, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if skAuto.Method != Halving {
				t.Fatalf("auto on Type I chose %v", skAuto.Method)
			}
			skAutoW, err := Build(points, w, kern, 0.15, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if skAutoW.Method != Sensitivity {
				t.Fatalf("auto on Type II chose %v", skAutoW.Method)
			}
		})
	}
}

// TestHalvingCompresses checks the discrepancy construction actually
// reduces clustered data well below the source size (the whole point of
// preferring it over uniform sampling at small ε).
func TestHalvingCompresses(t *testing.T) {
	n := 8000
	if testing.Short() {
		n = 2000
	}
	rng := rand.New(rand.NewSource(9))
	points := clusterCloud(rng, n, 3)
	sk, err := Build(points, nil, kernel.NewGaussian(30), 0.1, Config{Method: Halving})
	if err != nil {
		t.Fatal(err)
	}
	if sk.Len() > n/4 {
		t.Fatalf("halving kept %d of %d points (expected ≤ n/4)", sk.Len(), n)
	}
	if sk.Len() < 32 {
		t.Fatalf("halving went below MinSize: %d", sk.Len())
	}
}

func TestHoeffdingSize(t *testing.T) {
	m := hoeffdingSize(0.1, 1e-3)
	if m < 300 || m > 500 {
		t.Fatalf("hoeffdingSize(0.1, 1e-3) = %d, want ≈ 380", m)
	}
	if a, b := hoeffdingSize(0.05, 1e-3), hoeffdingSize(0.1, 1e-3); a <= b {
		t.Fatalf("smaller ε must need more samples: %d vs %d", a, b)
	}
}

func TestSmallSourceReturnsFullSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := clusterCloud(rng, 50, 2)
	for _, method := range []Method{Uniform, Sensitivity} {
		sk, err := Build(points, nil, kernel.NewGaussian(5), 0.1, Config{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		if sk.Len() != 50 {
			t.Fatalf("%v: tiny source should pass through whole, got %d points", method, sk.Len())
		}
	}
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	points := clusterCloud(rng, 100, 2)
	gauss := kernel.NewGaussian(5)
	cases := []struct {
		name    string
		points  *vec.Matrix
		weights []float64
		kern    kernel.Params
		eps     float64
		cfg     Config
		errLike string
	}{
		{"empty", nil, nil, gauss, 0.1, Config{}, "empty"},
		{"weights mismatch", points, []float64{1}, gauss, 0.1, Config{}, "weights"},
		{"mixed sign", points, mixedWeights(100), gauss, 0.1, Config{}, "mixed-sign"},
		{"all negative", points, negWeights(100), gauss, 0.1, Config{}, "negative weights"},
		{"nan weight", points, nanWeights(100), gauss, 0.1, Config{}, "finite"},
		{"polynomial kernel", points, nil, kernel.NewPolynomial(1, 1, 2), 0.1, Config{}, "distance-based"},
		{"sigmoid kernel", points, nil, kernel.NewSigmoid(1, 0), 0.1, Config{}, "distance-based"},
		{"eps zero", points, nil, gauss, 0, Config{}, "eps"},
		{"eps one", points, nil, gauss, 1, Config{}, "eps"},
		{"eps nan", points, nil, gauss, math.NaN(), Config{}, "eps"},
		{"uniform on weighted", points, rampWeights(100), gauss, 0.1, Config{Method: Uniform}, "identical"},
		{"bad method", points, nil, gauss, 0.1, Config{Method: Method(99)}, "unknown method"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Build(tc.points, tc.weights, tc.kern, tc.eps, tc.cfg)
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.errLike) {
				t.Fatalf("error %q does not mention %q", err, tc.errLike)
			}
		})
	}
}

func mixedWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	w[n/2] = -1
	return w
}

// negWeights is uniformly negative — not mixed-sign, but still outside
// the normalized-error model; the error must say so without claiming
// Type III.
func negWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = -1
	}
	return w
}

func nanWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	w[0] = math.NaN()
	return w
}

func rampWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 + float64(i)
	}
	return w
}

// TestBasisRecorded pins each construction's guarantee-basis labelling:
// sampling sketches are per-query Hoeffding bounds carrying δ, halving is
// empirical, and identity (no-reduction) sketches are exact.
func TestBasisRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	big := clusterCloud(rng, 2000, 2)
	gauss := kernel.NewGaussian(5)

	uni, err := Build(big, nil, gauss, 0.1, Config{Method: Uniform})
	if err != nil {
		t.Fatal(err)
	}
	if uni.Basis != BasisHoeffding || uni.Delta != 1e-3 {
		t.Fatalf("uniform basis %q delta %v, want hoeffding / 1e-3", uni.Basis, uni.Delta)
	}

	sens, err := Build(big, rampWeights(2000), gauss, 0.1, Config{Method: Sensitivity})
	if err != nil {
		t.Fatal(err)
	}
	if sens.Basis != BasisHoeffding || sens.Delta != 1e-3 {
		t.Fatalf("sensitivity basis %q delta %v", sens.Basis, sens.Delta)
	}

	halv, err := Build(big, nil, gauss, 0.2, Config{Method: Halving})
	if err != nil {
		t.Fatal(err)
	}
	wantHalv := BasisEmpirical
	if halv.Len() == big.Rows {
		wantHalv = BasisExact
	}
	if halv.Basis != wantHalv || halv.Delta != 0 {
		t.Fatalf("halving basis %q delta %v, want %q / 0", halv.Basis, halv.Delta, wantHalv)
	}

	small := clusterCloud(rng, 40, 2)
	ident, err := Build(small, nil, gauss, 0.1, Config{Method: Uniform})
	if err != nil {
		t.Fatal(err)
	}
	if ident.Basis != BasisExact || ident.Delta != 0 {
		t.Fatalf("identity sketch basis %q delta %v, want exact / 0", ident.Basis, ident.Delta)
	}
}

func TestParseMethod(t *testing.T) {
	for _, s := range []string{"auto", "uniform", "halving", "sensitivity"} {
		m, err := ParseMethod(s)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != s {
			t.Fatalf("round trip %q -> %v", s, m)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Fatal("bogus method accepted")
	}
}

// TestDeterministicBySeed pins reproducibility: same seed, same sketch.
func TestDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points := clusterCloud(rng, 2000, 3)
	for _, method := range []Method{Uniform, Halving, Sensitivity} {
		a, err := Build(points, nil, kernel.NewGaussian(20), 0.1, Config{Method: method, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(points, nil, kernel.NewGaussian(20), 0.1, Config{Method: method, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("%v: sizes differ %d vs %d", method, a.Len(), b.Len())
		}
		if !vec.Equal(a.Points.Data, b.Points.Data, 0) || !vec.Equal(a.Weights, b.Weights, 0) {
			t.Fatalf("%v: sketches differ under one seed", method)
		}
	}
}

// TestSpatialOrderIsPermutation guards the pairing order primitive.
func TestSpatialOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 3, 7, 64, 257} {
		points := clusterCloud(rng, n, 3)
		order := spatialOrder(points)
		if len(order) != n {
			t.Fatalf("n=%d: order has %d entries", n, len(order))
		}
		seen := make([]bool, n)
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("n=%d: bad permutation", n)
			}
			seen[i] = true
		}
	}
}
