package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"karl"
	"karl/internal/server"
	"karl/internal/shard"
)

// newDynEngine builds an empty dynamic engine with a small seal size so
// mutation streams exercise real multi-segment manifests.
func newDynEngine(t testing.TB, kern karl.Kernel, kind karl.IndexKind) *karl.DynamicEngine {
	t.Helper()
	d, err := karl.NewDynamic(kern, karl.WithIndex(kind, 16), karl.WithSealSize(64))
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	return d
}

// localSpawn installs a split-off member in-process: the moved half
// arrives as a persistence stream (the same wire unit a remote spawner
// would receive) and comes back as a local mutable shard.
func localSpawn(_ context.Context, member shard.Member, moved []byte) (MutableShardClient, error) {
	d, err := karl.ReadDynamic(bytes.NewReader(moved))
	if err != nil {
		return nil, err
	}
	return NewLocalMutableShard(member.Name, d), nil
}

// foundWritable builds an n-member hash-routed writable cluster over
// local mutable shards and returns it with the underlying engines.
func foundWritable(t testing.TB, n int, kern karl.Kernel, kind karl.IndexKind, spawn SpawnFunc, cfg WritableConfig) (*WritableCoordinator, []*karl.DynamicEngine) {
	t.Helper()
	engines := make([]*karl.DynamicEngine, n)
	founders := make([]WritableShard, n)
	for i := range founders {
		engines[i] = newDynEngine(t, kern, kind)
		name := fmt.Sprintf("shard-%d", i)
		founders[i] = WritableShard{Name: name, Client: NewLocalMutableShard(name, engines[i])}
	}
	wco, err := NewWritable(context.Background(), shard.Hash, founders, spawn, cfg)
	if err != nil {
		t.Fatalf("NewWritable: %v", err)
	}
	return wco, engines
}

func mustInsert(t *testing.T, wco *WritableCoordinator, pts [][]float64, w []float64) []uint64 {
	t.Helper()
	ids, err := wco.Insert(context.Background(), pts, w)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	return ids
}

// TestWritableEquivalence is the writable acceptance gate: after any
// interleaving of routed inserts, deletes and a shard split, a 4-shard
// writable coordinator must answer with the same ε/τ contracts as one
// monolithic DynamicEngine fed the identical mutation stream — across
// index structures, query types and kernels.
func TestWritableEquivalence(t *testing.T) {
	kinds := map[string]karl.IndexKind{"kd": karl.KDTree, "ball": karl.BallTree, "vp": karl.VPTree}
	kernels := map[string]karl.Kernel{
		"gaussian":     karl.Gaussian(0.5),
		"epanechnikov": karl.Epanechnikov(0.2),
		"sigmoid":      karl.Sigmoid(0.05, 0.1),
	}
	const eps = 0.05
	ctx := context.Background()
	for kindName, kind := range kinds {
		for _, typ := range []string{"I", "II", "III"} {
			for kernName, kern := range kernels {
				t.Run(fmt.Sprintf("%s/%s/%s", kindName, typ, kernName), func(t *testing.T) {
					wco, _ := foundWritable(t, 4, kern, kind, localSpawn, WritableConfig{})
					mono := newDynEngine(t, kern, kind)

					// Wave 1: bulk insert, then a delete pass.
					pts1, w1 := dataset(360, 3, 7, typ)
					gids := mustInsert(t, wco, pts1, w1)
					mids, err := mono.InsertBulk(pts1, w1)
					if err != nil {
						t.Fatalf("mono.InsertBulk: %v", err)
					}
					for i := range pts1 {
						if i%7 != 0 {
							continue
						}
						if err := wco.Delete(ctx, gids[i]); err != nil {
							t.Fatalf("Delete(%d): %v", gids[i], err)
						}
						if err := mono.Delete(mids[i]); err != nil {
							t.Fatalf("mono.Delete(%d): %v", mids[i], err)
						}
					}

					// Split member 1; half its hash slots (and their points)
					// move to a freshly spawned fifth member.
					if err := wco.Split(ctx, 1); err != nil {
						t.Fatalf("Split: %v", err)
					}
					if wco.NumShards() != 5 {
						t.Fatalf("NumShards = %d after split, want 5", wco.NumShards())
					}

					// Wave 2: more inserts over the grown membership, then
					// deletes mixing pre-split ids (which chase the split
					// lineage) with post-split ones.
					pts2, w2 := dataset(120, 3, 8, typ)
					gids2 := mustInsert(t, wco, pts2, w2)
					mids2, err := mono.InsertBulk(pts2, w2)
					if err != nil {
						t.Fatalf("mono.InsertBulk: %v", err)
					}
					for i := range pts1 {
						if i%7 == 0 || i%11 != 3 {
							continue
						}
						if err := wco.Delete(ctx, gids[i]); err != nil {
							t.Fatalf("post-split Delete(%d): %v", gids[i], err)
						}
						if err := mono.Delete(mids[i]); err != nil {
							t.Fatalf("mono.Delete(%d): %v", mids[i], err)
						}
					}
					for i := range pts2 {
						if i%5 != 1 {
							continue
						}
						if err := wco.Delete(ctx, gids2[i]); err != nil {
							t.Fatalf("Delete(%d): %v", gids2[i], err)
						}
						if err := mono.Delete(mids2[i]); err != nil {
							t.Fatalf("mono.Delete(%d): %v", mids2[i], err)
						}
					}

					queries, _ := dataset(5, 3, 11, "I")
					for qi, q := range queries {
						exact, _, err := mono.AggregateStats(q)
						if err != nil {
							t.Fatalf("mono.Aggregate: %v", err)
						}
						scale := math.Max(math.Abs(exact), 1)

						res, err := wco.Aggregate(ctx, q)
						if err != nil {
							t.Fatalf("q%d: Aggregate: %v", qi, err)
						}
						if res.Partial || res.Covered != 1 {
							t.Fatalf("q%d: unexpected partial result %+v", qi, res)
						}
						if diff := math.Abs(res.Value - exact); diff > 1e-9*scale {
							t.Errorf("q%d: aggregate %v, want %v (diff %g)", qi, res.Value, exact, diff)
						}

						margin := math.Max(0.05*math.Abs(exact), 1e-3)
						for _, tau := range []float64{exact - margin, exact + margin} {
							tr, err := wco.Threshold(ctx, q, tau)
							if err != nil {
								t.Fatalf("q%d: Threshold(%v): %v", qi, tau, err)
							}
							if want := exact > tau; tr.Over != want {
								t.Errorf("q%d: threshold(%v) = %v, want %v (exact %v)", qi, tau, tr.Over, want, exact)
							}
						}

						ar, err := wco.Approximate(ctx, q, eps)
						if err != nil {
							t.Fatalf("q%d: Approximate: %v", qi, err)
						}
						if tol := eps*math.Abs(exact) + 1e-9*scale; math.Abs(ar.Value-exact) > tol {
							t.Errorf("q%d: approximate %v outside ±%g of %v", qi, ar.Value, tol, exact)
						}
						if ar.LB-1e-9*scale > exact || ar.UB+1e-9*scale < exact {
							t.Errorf("q%d: exact %v outside certified [%v, %v]", qi, exact, ar.LB, ar.UB)
						}
					}
				})
			}
		}
	}
}

// TestWritableIDRouting pins the cluster-global id scheme: ids decode to
// the member that assigned them, deletes of moved points chase lineage,
// and deleting a missing or twice-deleted id reports ErrPointNotFound.
func TestWritableIDRouting(t *testing.T) {
	ctx := context.Background()
	wco, _ := foundWritable(t, 2, karl.Gaussian(1), karl.KDTree, localSpawn, WritableConfig{})
	pts, _ := dataset(100, 2, 3, "I")
	gids := mustInsert(t, wco, pts, nil)
	for i, gid := range gids {
		mid, _ := DecodeID(gid)
		if wco.Manifest().Member(mid) == nil {
			t.Fatalf("id %d of point %d names unknown member %d", gid, i, mid)
		}
		if want := wco.Manifest().Route(pts[i]); mid != want {
			t.Fatalf("point %d landed on member %d, routing says %d", i, mid, want)
		}
	}
	if err := wco.Delete(ctx, gids[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := wco.Delete(ctx, gids[0]); !errors.Is(err, karl.ErrPointNotFound) {
		t.Fatalf("double delete: err = %v, want ErrPointNotFound", err)
	}
	// An id naming a member that was never part of the cluster.
	bogus, err := EncodeID(99, 1)
	if err != nil {
		t.Fatalf("EncodeID: %v", err)
	}
	if err := wco.Delete(ctx, bogus); !errors.Is(err, karl.ErrPointNotFound) {
		t.Fatalf("bogus member delete: err = %v, want ErrPointNotFound", err)
	}
	if _, err := EncodeID(1, 1<<48); err == nil {
		t.Fatal("sequence overflowing the id fence must be rejected")
	}
}

// TestWritableKDGrowth grows a kd-routed cluster from a single founding
// member by automatic splits and checks that routing, lineage deletes and
// answers stay consistent with a monolithic engine.
func TestWritableKDGrowth(t *testing.T) {
	ctx := context.Background()
	kern := karl.Gaussian(0.5)
	root := newDynEngine(t, kern, karl.KDTree)
	wco, err := NewWritable(ctx, shard.KDSplit,
		[]WritableShard{{Name: "root", Client: NewLocalMutableShard("root", root)}},
		localSpawn, WritableConfig{MinSplitPoints: 64, SplitFactor: 2})
	if err != nil {
		t.Fatalf("NewWritable: %v", err)
	}
	mono := newDynEngine(t, kern, karl.KDTree)

	pts, w := dataset(400, 3, 37, "II")
	gids := mustInsert(t, wco, pts, w)
	mids, err := mono.InsertBulk(pts, w)
	if err != nil {
		t.Fatalf("mono.InsertBulk: %v", err)
	}
	if wco.NumShards() < 2 || wco.Splits() < 1 {
		t.Fatalf("automatic kd split did not fire: shards=%d splits=%d", wco.NumShards(), wco.Splits())
	}
	if wco.Epoch() < 2 {
		t.Fatalf("epoch = %d after a split, want >= 2", wco.Epoch())
	}

	// Every pre-split id must still delete, wherever its point moved.
	for i := range pts {
		if i%3 != 0 {
			continue
		}
		if err := wco.Delete(ctx, gids[i]); err != nil {
			t.Fatalf("lineage delete of %d: %v", gids[i], err)
		}
		if err := mono.Delete(mids[i]); err != nil {
			t.Fatalf("mono.Delete: %v", err)
		}
	}
	pts2, w2 := dataset(150, 3, 38, "II")
	mustInsert(t, wco, pts2, w2)
	if _, err := mono.InsertBulk(pts2, w2); err != nil {
		t.Fatalf("mono.InsertBulk: %v", err)
	}

	queries, _ := dataset(4, 3, 39, "I")
	for qi, q := range queries {
		exact, _, err := mono.AggregateStats(q)
		if err != nil {
			t.Fatalf("mono.Aggregate: %v", err)
		}
		res, err := wco.Aggregate(ctx, q)
		if err != nil {
			t.Fatalf("q%d: Aggregate: %v", qi, err)
		}
		if res.Partial {
			t.Fatalf("q%d: unexpected partial result %+v", qi, res)
		}
		if diff := math.Abs(res.Value - exact); diff > 1e-9*math.Max(math.Abs(exact), 1) {
			t.Errorf("q%d: aggregate %v, want %v", qi, res.Value, exact)
		}
	}
}

// TestWritableChaosMidSplit is the split-safety acceptance test: a shard
// killed mid-split leaves the coordinator unable to know whether the
// split was applied, so the member is quarantined and every answer that
// would need its contents degrades to the partial/indeterminate contract
// — never a silently wrong value, even after the shard comes back.
func TestWritableChaosMidSplit(t *testing.T) {
	ctx := context.Background()
	kern := karl.Gaussian(0.5)
	engines := make([]*karl.DynamicEngine, 2)
	switches := make([]*downableHandler, 2)
	founders := make([]WritableShard, 2)
	for i := range founders {
		engines[i] = newDynEngine(t, kern, karl.KDTree)
		srv, err := server.NewMutable(engines[i])
		if err != nil {
			t.Fatalf("server.NewMutable: %v", err)
		}
		switches[i] = &downableHandler{inner: srv}
		ts := httptest.NewServer(switches[i])
		t.Cleanup(ts.Close)
		founders[i] = WritableShard{Name: fmt.Sprintf("h%d", i), Client: NewHTTPShard(ts.URL)}
	}
	wco, err := NewWritable(ctx, shard.Hash, founders, localSpawn,
		WritableConfig{Config: Config{Timeout: 2 * time.Second, Backoff: time.Millisecond}})
	if err != nil {
		t.Fatalf("NewWritable: %v", err)
	}
	pts, w := dataset(400, 3, 41, "II")
	mustInsert(t, wco, pts, w)

	q := []float64{0.2, -0.1, 0.5}
	exactOf := func(d *karl.DynamicEngine) float64 {
		v, _, err := d.AggregateStats(q)
		if err != nil {
			t.Fatalf("engine aggregate: %v", err)
		}
		return v
	}
	res, err := wco.Aggregate(ctx, q)
	if err != nil || res.Partial {
		t.Fatalf("healthy aggregate: res=%+v err=%v", res, err)
	}
	aliveF, deadF := exactOf(engines[0]), exactOf(engines[1])
	if diff := math.Abs(res.Value - (aliveF + deadF)); diff > 1e-9 {
		t.Fatalf("healthy value %v, want %v", res.Value, aliveF+deadF)
	}
	alivePos, aliveNeg := engines[0].WeightMass()
	deadPos, deadNeg := engines[1].WeightMass()
	aliveW, deadW := alivePos+aliveNeg, deadPos+deadNeg

	// Kill member 2, then ask it to split: the response is lost, the
	// coordinator cannot know whether the shard applied the extraction.
	epoch0 := wco.Epoch()
	switches[1].down.Store(true)
	if err := wco.Split(ctx, 2); err == nil {
		t.Fatal("split against a dead shard must fail")
	}
	if wco.Epoch() != epoch0+1 {
		t.Fatalf("ambiguous split failure must advance the epoch: %d -> %d", epoch0, wco.Epoch())
	}
	if wco.NumShards() != 2 {
		t.Fatalf("quarantine must not change membership size: %d", wco.NumShards())
	}

	// Aggregate: explicit partial covering exactly the live mass.
	res, err = wco.Aggregate(ctx, q)
	if err != nil {
		t.Fatalf("degraded aggregate: %v", err)
	}
	if !res.Partial || len(res.Failed) != 1 {
		t.Fatalf("degraded aggregate should be partial with one failed member: %+v", res)
	}
	if want := aliveW / (aliveW + deadW); math.Abs(res.Covered-want) > 1e-9 {
		t.Fatalf("covered = %v, want %v", res.Covered, want)
	}
	if math.Abs(res.Value-aliveF) > 1e-9*math.Max(math.Abs(aliveF), 1) {
		t.Fatalf("partial value %v, want live mass %v", res.Value, aliveF)
	}

	// Threshold inside the quarantined member's a-priori interval: any
	// verdict would be a guess.
	if _, err := wco.Threshold(ctx, q, aliveF+deadW/2); !errors.Is(err, ErrIndeterminate) {
		t.Fatalf("risky threshold: err = %v, want ErrIndeterminate", err)
	}
	// Threshold the live shards already clear: decidable despite the loss.
	tr, err := wco.Threshold(ctx, q, aliveF/2)
	if err != nil {
		t.Fatalf("safe threshold: %v", err)
	}
	if !tr.Over {
		t.Fatalf("safe threshold should decide over: %+v", tr)
	}

	// Reviving the process does not lift the quarantine — its contents are
	// permanently unknowable (it may or may not have applied the split).
	switches[1].down.Store(false)
	res, err = wco.Aggregate(ctx, q)
	if err != nil {
		t.Fatalf("post-revival aggregate: %v", err)
	}
	if !res.Partial {
		t.Fatal("a revived quarantined member must stay out of the answers")
	}

	// Writes that route to the quarantined member are refused loudly.
	more, _ := dataset(50, 3, 43, "I")
	if _, err := wco.Insert(ctx, more, nil); err == nil {
		t.Fatal("insert routing to a quarantined member must fail")
	}
}

// TestWritableSplitCleanRefusal pins the other failure class: a shard
// that REJECTS a split (degenerate data, HTTP 409) has provably applied
// no side effect, so the membership and the answers stay exactly as
// they were.
func TestWritableSplitCleanRefusal(t *testing.T) {
	ctx := context.Background()
	d := newDynEngine(t, karl.Gaussian(1), karl.KDTree)
	srv, err := server.NewMutable(d)
	if err != nil {
		t.Fatalf("server.NewMutable: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	wco, err := NewWritable(ctx, shard.KDSplit,
		[]WritableShard{{Name: "solo", Client: NewHTTPShard(ts.URL)}},
		localSpawn, WritableConfig{})
	if err != nil {
		t.Fatalf("NewWritable: %v", err)
	}
	// Fifty copies of one point: no axis cut can separate them.
	pts := make([][]float64, 50)
	for i := range pts {
		pts[i] = []float64{1, 2}
	}
	mustInsert(t, wco, pts, nil)

	epoch0 := wco.Epoch()
	if err := wco.Split(ctx, 1); err == nil {
		t.Fatal("splitting degenerate data must fail")
	}
	if wco.Epoch() != epoch0 {
		t.Fatalf("clean refusal must not advance the epoch: %d -> %d", epoch0, wco.Epoch())
	}
	if wco.NumShards() != 1 {
		t.Fatalf("clean refusal must not change membership: %d members", wco.NumShards())
	}
	res, err := wco.Aggregate(ctx, []float64{1, 2})
	if err != nil || res.Partial {
		t.Fatalf("after clean refusal: res=%+v err=%v", res, err)
	}
	if math.Abs(res.Value-50) > 1e-9 {
		t.Fatalf("value %v, want 50 (fifty unit weights at the query point)", res.Value)
	}
}

// TestWritableManifestPersistence checks the epoch-versioned manifest
// file: every membership change lands on disk, the persisted routing
// agrees with the live one, and a second coordinator founding onto the
// same path is refused as stale.
func TestWritableManifestPersistence(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "cluster.manifest")
	engines := make([]*karl.DynamicEngine, 2)
	founders := make([]WritableShard, 2)
	for i := range founders {
		engines[i] = newDynEngine(t, karl.Gaussian(1), karl.KDTree)
		name := fmt.Sprintf("m%d", i)
		founders[i] = WritableShard{Name: name, Client: NewLocalMutableShard(name, engines[i])}
	}
	wco, err := NewWritable(ctx, shard.Hash, founders, localSpawn, WritableConfig{ManifestPath: path})
	if err != nil {
		t.Fatalf("NewWritable: %v", err)
	}
	pts, _ := dataset(300, 2, 47, "I")
	mustInsert(t, wco, pts, nil)
	if err := wco.Split(ctx, 1); err != nil {
		t.Fatalf("Split: %v", err)
	}

	man, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if man.Epoch != wco.Epoch() {
		t.Fatalf("persisted epoch %d, live epoch %d", man.Epoch, wco.Epoch())
	}
	if len(man.Members) != 3 {
		t.Fatalf("persisted members = %d, want 3", len(man.Members))
	}
	live := wco.Manifest()
	probes, _ := dataset(50, 2, 48, "I")
	for _, p := range probes {
		if man.Route(p) != live.Route(p) {
			t.Fatalf("persisted and live manifests route %v differently", p)
		}
	}

	// A fresh coordinator founding over the same path would write epoch 1
	// behind the on-disk epoch 2 — refused as stale.
	fresh := []WritableShard{{Name: "f", Client: NewLocalMutableShard("f", newDynEngine(t, karl.Gaussian(1), karl.KDTree))}}
	if _, err := NewWritable(ctx, shard.Hash, fresh, nil, WritableConfig{ManifestPath: path}); !errors.Is(err, shard.ErrStaleManifest) {
		t.Fatalf("founding onto a newer manifest: err = %v, want ErrStaleManifest", err)
	}
}

// doJSON drives the writable facade with raw HTTP.
func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out
}

// TestWritableHTTPSurface drives the coordinator's writable HTTP facade:
// routed inserts and deletes next to the read surface, with cluster-global
// ids on the wire.
func TestWritableHTTPSurface(t *testing.T) {
	wco, engines := foundWritable(t, 2, karl.Gaussian(1), karl.KDTree, localSpawn, WritableConfig{})
	front := httptest.NewServer(NewWritableHTTPServer(wco))
	t.Cleanup(front.Close)

	pts, _ := dataset(60, 2, 51, "I")
	status, body := doJSON(t, http.MethodPost, front.URL+"/v1/insert", map[string]any{"points": pts})
	if status != http.StatusOK {
		t.Fatalf("insert status %d: %s", status, body)
	}
	var ins ClusterInsertResponse
	if err := json.Unmarshal(body, &ins); err != nil {
		t.Fatalf("decode insert response: %v", err)
	}
	if ins.Inserted != len(pts) || len(ins.IDs) != len(pts) || ins.Epoch == 0 {
		t.Fatalf("insert response %+v", ins)
	}

	status, body = doJSON(t, http.MethodGet, front.URL+"/v1/info", nil)
	if status != http.StatusOK {
		t.Fatalf("info status %d", status)
	}
	var info ClusterInfoResponse
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("decode info: %v", err)
	}
	if !info.Writable || info.Points != len(pts) || info.Dims != 2 {
		t.Fatalf("info %+v", info)
	}

	q := []float64{0.1, -0.2}
	var want float64
	for _, d := range engines {
		v, _, err := d.AggregateStats(q)
		if err != nil {
			t.Fatalf("engine aggregate: %v", err)
		}
		want += v
	}
	status, body = doJSON(t, http.MethodPost, front.URL+"/v1/aggregate", map[string]any{"q": q})
	if status != http.StatusOK {
		t.Fatalf("aggregate status %d: %s", status, body)
	}
	var val ClusterValueResponse
	if err := json.Unmarshal(body, &val); err != nil {
		t.Fatalf("decode aggregate: %v", err)
	}
	if math.Abs(val.Value-want) > 1e-9 {
		t.Fatalf("aggregate %v, want %v", val.Value, want)
	}

	status, body = doJSON(t, http.MethodDelete, front.URL+"/v1/point", map[string]any{"id": ins.IDs[0]})
	if status != http.StatusOK {
		t.Fatalf("delete status %d: %s", status, body)
	}
	var del ClusterDeleteResponse
	if err := json.Unmarshal(body, &del); err != nil {
		t.Fatalf("decode delete: %v", err)
	}
	if del.Deleted != 1 {
		t.Fatalf("delete response %+v", del)
	}
	if status, _ = doJSON(t, http.MethodDelete, front.URL+"/v1/point", map[string]any{"id": ins.IDs[0]}); status != http.StatusNotFound {
		t.Fatalf("double delete status %d, want 404", status)
	}
	if status, _ = doJSON(t, http.MethodPost, front.URL+"/v1/insert", map[string]any{}); status != http.StatusBadRequest {
		t.Fatalf("empty insert status %d, want 400", status)
	}
	if status, _ = doJSON(t, http.MethodPost, front.URL+"/v1/insert",
		map[string]any{"p": []float64{1, 2}, "points": pts}); status != http.StatusBadRequest {
		t.Fatalf("ambiguous insert status %d, want 400", status)
	}
}

// BenchmarkClusterInsertHeavy is the CI smoke number for the write path:
// bulk inserts routed through a 4-shard hash coordinator, with automatic
// splitting armed.
func BenchmarkClusterInsertHeavy(b *testing.B) {
	wco, _ := foundWritable(b, 4, karl.Gaussian(0.5), karl.KDTree, localSpawn,
		WritableConfig{MinSplitPoints: 1 << 20})
	pts, w := dataset(256, 5, 61, "II")
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wco.Insert(ctx, pts, w); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWritableSplitHoldsReads pins the split-window read contract: from
// the instant SplitOut drops the moved half out of the source shard until
// the post-split membership is installed, the moved mass belongs to no
// queryable member — a read that completed inside that window would
// return a silently reduced sum. The generation seqlock must therefore
// hold reads across the whole window (they block until their context
// expires or the split finishes), never letting one through.
func TestWritableSplitHoldsReads(t *testing.T) {
	ctx := context.Background()
	entered := make(chan struct{})
	release := make(chan struct{})
	spawn := func(ctx context.Context, member shard.Member, moved []byte) (MutableShardClient, error) {
		close(entered) // SplitOut is done; the moved half is in flight
		<-release
		return localSpawn(ctx, member, moved)
	}
	wco, _ := foundWritable(t, 2, karl.Gaussian(1), karl.KDTree, spawn, WritableConfig{})
	pts, _ := dataset(300, 2, 71, "I")
	mustInsert(t, wco, pts, nil)

	q := []float64{0.1, 0.2}
	full, err := wco.Aggregate(ctx, q)
	if err != nil || full.Partial {
		t.Fatalf("pre-split aggregate: res=%+v err=%v", full, err)
	}

	done := make(chan error, 1)
	go func() { done <- wco.Split(context.Background(), 1) }()
	<-entered

	// Mid-window read: must block on the seqlock, not return a value.
	qctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if res, err := wco.Aggregate(qctx, q); err == nil {
		t.Fatalf("mid-split aggregate returned %+v; the source shard already dropped the moved half", res)
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-split aggregate: err = %v, want the read held until its deadline", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Split: %v", err)
	}
	res, err := wco.Aggregate(ctx, q)
	if err != nil || res.Partial {
		t.Fatalf("post-split aggregate: res=%+v err=%v", res, err)
	}
	if diff := math.Abs(res.Value - full.Value); diff > 1e-9*math.Max(math.Abs(full.Value), 1) {
		t.Fatalf("post-split value %v, want pre-split %v", res.Value, full.Value)
	}
}

// TestWritableResume pins the restart path: a coordinator rebuilt from
// the persisted manifest carries the epoch, routing and split lineage
// forward — pre-restart cluster-global ids keep resolving, answers match,
// and the next membership change persists epoch+1 instead of tripping
// the stale-epoch guard. Members the resumed shard list cannot reach
// serve as unreachable, degrading answers to the explicit partial
// contract; a shard naming no manifest member is rejected.
func TestWritableResume(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "cluster.manifest")
	spawned := map[string]MutableShardClient{}
	spawn := func(ctx context.Context, member shard.Member, moved []byte) (MutableShardClient, error) {
		c, err := localSpawn(ctx, member, moved)
		if err == nil {
			spawned[member.Name] = c
		}
		return c, err
	}
	engines := make([]*karl.DynamicEngine, 2)
	founders := make([]WritableShard, 2)
	for i := range founders {
		engines[i] = newDynEngine(t, karl.Gaussian(1), karl.KDTree)
		name := fmt.Sprintf("m%d", i)
		founders[i] = WritableShard{Name: name, Client: NewLocalMutableShard(name, engines[i])}
	}
	wco, err := NewWritable(ctx, shard.Hash, founders, spawn, WritableConfig{ManifestPath: path})
	if err != nil {
		t.Fatalf("NewWritable: %v", err)
	}
	pts, _ := dataset(300, 2, 53, "I")
	gids := mustInsert(t, wco, pts, nil)
	if err := wco.Split(ctx, 1); err != nil {
		t.Fatalf("Split: %v", err)
	}
	q := []float64{0.3, -0.2}
	want, err := wco.Aggregate(ctx, q)
	if err != nil || want.Partial {
		t.Fatalf("pre-restart aggregate: res=%+v err=%v", want, err)
	}

	// "Restart": rebuild from disk, re-attaching every member by name.
	man, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	resumedShards := append([]WritableShard(nil), founders...)
	for name, c := range spawned {
		resumedShards = append(resumedShards, WritableShard{Name: name, Client: c})
	}
	re, err := ResumeWritable(ctx, man, resumedShards, spawn, WritableConfig{ManifestPath: path})
	if err != nil {
		t.Fatalf("ResumeWritable: %v", err)
	}
	if re.Epoch() != wco.Epoch() || re.NumShards() != 3 {
		t.Fatalf("resumed epoch=%d shards=%d, want epoch=%d shards=3", re.Epoch(), re.NumShards(), wco.Epoch())
	}
	res, err := re.Aggregate(ctx, q)
	if err != nil || res.Partial {
		t.Fatalf("resumed aggregate: res=%+v err=%v", res, err)
	}
	if diff := math.Abs(res.Value - want.Value); diff > 1e-9*math.Max(math.Abs(want.Value), 1) {
		t.Fatalf("resumed value %v, want %v", res.Value, want.Value)
	}
	// Pre-restart ids still resolve through the restored lineage.
	if err := re.Delete(ctx, gids[0]); err != nil {
		t.Fatalf("pre-restart id after resume: %v", err)
	}
	// Writes keep routing, and the next membership change advances the
	// persisted epoch past the resumed one.
	more, _ := dataset(50, 2, 54, "I")
	ids2, err := re.Insert(ctx, more, nil)
	if err != nil || len(ids2) != len(more) {
		t.Fatalf("post-resume insert: ids=%d err=%v", len(ids2), err)
	}
	preSplit := re.Epoch()
	if err := re.Split(ctx, 2); err != nil {
		t.Fatalf("post-resume split: %v", err)
	}
	onDisk, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("LoadManifest after post-resume split: %v", err)
	}
	if onDisk.Epoch != preSplit+1 || onDisk.Epoch != re.Epoch() {
		t.Fatalf("post-resume split persisted epoch %d, live %d, want %d", onDisk.Epoch, re.Epoch(), preSplit+1)
	}

	// Resuming without the split-off member degrades, never lies: its
	// mass stays in the denominator, so answers are explicitly partial.
	part, err := ResumeWritable(ctx, man, founders, nil, WritableConfig{})
	if err != nil {
		t.Fatalf("ResumeWritable (degraded): %v", err)
	}
	pres, err := part.Aggregate(ctx, q)
	if err != nil {
		t.Fatalf("degraded resumed aggregate: %v", err)
	}
	if !pres.Partial || pres.Covered >= 1 {
		t.Fatalf("resume missing a member must answer partial: %+v", pres)
	}

	// A client naming no manifest member belongs to a different cluster.
	stranger := []WritableShard{{Name: "stranger", Client: founders[0].Client}}
	if _, err := ResumeWritable(ctx, man, stranger, nil, WritableConfig{}); err == nil {
		t.Fatal("resuming with an unknown shard name must fail")
	}
}

// infoCountingClient counts Info probes so tests can observe the split
// trigger's probe cadence.
type infoCountingClient struct {
	MutableShardClient
	infos *atomic.Int64
}

func (c infoCountingClient) Info(ctx context.Context) (ShardInfo, error) {
	c.infos.Add(1)
	return c.MutableShardClient.Info(ctx)
}

// TestWritableSplitProbeThrottled pins the write-path cost model: the
// automatic split trigger polls every member's Info under the write
// lock, so it must run only once every SplitCheckEvery inserted points —
// not on every Insert.
func TestWritableSplitProbeThrottled(t *testing.T) {
	ctx := context.Background()
	var infos atomic.Int64
	founders := make([]WritableShard, 2)
	for i := range founders {
		d := newDynEngine(t, karl.Gaussian(1), karl.KDTree)
		// Seed each member so the dataset has a dimensionality at founding
		// — otherwise the first inserts also pay dims-rebuild Info rounds,
		// which are not what this test counts.
		if err := d.Insert([]float64{float64(i), -float64(i)}, 1); err != nil {
			t.Fatalf("seed insert: %v", err)
		}
		name := fmt.Sprintf("c%d", i)
		founders[i] = WritableShard{Name: name, Client: infoCountingClient{NewLocalMutableShard(name, d), &infos}}
	}
	wco, err := NewWritable(ctx, shard.Hash, founders, localSpawn, WritableConfig{SplitCheckEvery: 64})
	if err != nil {
		t.Fatalf("NewWritable: %v", err)
	}
	base := infos.Load()
	pts, _ := dataset(63, 2, 57, "I")
	for _, p := range pts {
		mustInsert(t, wco, [][]float64{p}, nil)
	}
	// 63 single-point inserts stay under the 64-point probe threshold: no
	// Info probes at all on the write path.
	if got := infos.Load() - base; got != 0 {
		t.Fatalf("63 inserted points cost %d Info calls, want 0 (probe threshold not reached)", got)
	}
	mustInsert(t, wco, [][]float64{{0.5, 0.5}}, nil)
	// The 64th point crosses the threshold: exactly one probe round (one
	// Info per member).
	if got := infos.Load() - base; got != 2 {
		t.Fatalf("64th point: %d Info calls since founding, want 2 (one probe round)", got)
	}
}

// failingInsertClient accepts everything except inserts.
type failingInsertClient struct {
	MutableShardClient
}

func (c failingInsertClient) Insert(context.Context, [][]float64, []float64) ([]uint64, error) {
	return nil, errors.New("disk full")
}

// TestWritableInsertPartialIDs pins the mid-batch failure contract: the
// cross-member insert is not transactional, so when a later member
// fails, the ids of points that already landed on earlier members come
// back with the error (non-zero entries — 0 is never a valid cluster
// id), letting the caller delete the orphans or dedup a retry.
func TestWritableInsertPartialIDs(t *testing.T) {
	ctx := context.Background()
	founders := []WritableShard{
		{Name: "ok", Client: NewLocalMutableShard("ok", newDynEngine(t, karl.Gaussian(1), karl.KDTree))},
		{Name: "bad", Client: failingInsertClient{NewLocalMutableShard("bad", newDynEngine(t, karl.Gaussian(1), karl.KDTree))}},
	}
	wco, err := NewWritable(ctx, shard.Hash, founders, nil, WritableConfig{})
	if err != nil {
		t.Fatalf("NewWritable: %v", err)
	}
	// Order the batch so the healthy member's group lands first: the
	// router walks members in first-appearance order.
	pts, _ := dataset(60, 2, 59, "I")
	man := wco.Manifest()
	var ordered [][]float64
	for _, p := range pts {
		if man.Route(p) == 1 {
			ordered = append(ordered, p)
		}
	}
	okCount := len(ordered)
	for _, p := range pts {
		if man.Route(p) == 2 {
			ordered = append(ordered, p)
		}
	}
	if okCount == 0 || okCount == len(pts) {
		t.Fatalf("degenerate routing: %d of %d points on the healthy member", okCount, len(pts))
	}
	ids, err := wco.Insert(ctx, ordered, nil)
	if err == nil {
		t.Fatal("insert with a failing member must error")
	}
	if len(ids) != len(ordered) {
		t.Fatalf("partial ids length %d, want %d", len(ids), len(ordered))
	}
	for i, id := range ids {
		if i < okCount {
			if id == 0 {
				t.Fatalf("point %d landed on the healthy member but its id is missing", i)
			}
			if mid, _ := DecodeID(id); mid != 1 {
				t.Fatalf("point %d id decodes to member %d, want 1", i, mid)
			}
		} else if id != 0 {
			t.Fatalf("point %d routed to the failing member but reports id %d", i, id)
		}
	}
	// The reported orphans are real: a non-zero id deletes.
	if err := wco.Delete(ctx, ids[0]); err != nil {
		t.Fatalf("orphan delete: %v", err)
	}
}

// TestHTTPShardBare404 pins the 404 discrimination: only a 404 carrying
// the server's JSON error envelope is the shard's own "unknown point id"
// verdict. A bare 404 — an unregistered route (a shard not running
// -mutable) or a wrong base URL — must surface as an ordinary failure,
// not be swallowed by the coordinator's lineage chase as "point not
// found".
func TestHTTPShardBare404(t *testing.T) {
	ctx := context.Background()
	// No /v1/point route at all: the mux answers a bare text 404.
	ts := httptest.NewServer(http.NewServeMux())
	t.Cleanup(ts.Close)
	err := NewHTTPShard(ts.URL).Delete(ctx, 7)
	if err == nil {
		t.Fatal("delete against a route-less server must fail")
	}
	if errors.Is(err, karl.ErrPointNotFound) {
		t.Fatalf("bare 404 mapped to ErrPointNotFound: %v", err)
	}
	if errors.Is(err, errRejected) {
		t.Fatalf("bare 404 treated as a clean shard refusal: %v", err)
	}
	// The genuine unknown-id 404 still carries the envelope and maps to
	// the sentinel the lineage chase relies on.
	srv, err := server.NewMutable(newDynEngine(t, karl.Gaussian(1), karl.KDTree))
	if err != nil {
		t.Fatalf("server.NewMutable: %v", err)
	}
	ts2 := httptest.NewServer(srv)
	t.Cleanup(ts2.Close)
	if err := NewHTTPShard(ts2.URL).Delete(ctx, 12345); !errors.Is(err, karl.ErrPointNotFound) {
		t.Fatalf("enveloped 404: err = %v, want ErrPointNotFound", err)
	}
}
