// The writable cluster: a coordinator that owns dynamic membership and
// routes the WRITE path — inserts and deletes travel through an
// epoch-versioned shard.Manifest to the owning member, and a member whose
// weight mass outgrows its peers is split, shipping half its points to a
// freshly spawned member as a standard engine persistence stream.
//
// Reads reuse the immutable Coordinator unchanged: every membership epoch
// owns one read coordinator over that epoch's client set, swapped in
// atomically. A seqlock-style generation counter brackets membership
// changes so a query that straddles one (and could therefore mix
// pre-split and post-split shard snapshots into one sum) is detected and
// re-scattered against the new membership instead of returning a
// silently incomplete answer. Crucially the counter goes odd BEFORE the
// destructive step of a split — the SplitOut that drops the moved half
// from the source shard — and even only once the new membership is
// published, so reads hold (or re-scatter) across the entire window in
// which the moved mass is in flight and owned by no queryable member.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"karl"
	"karl/internal/shard"
)

// errRejected marks a shard request the shard refused before any side
// effect (validation failure, 4xx). Its absence from a failed split makes
// the failure ambiguous — the shard may or may not have applied it.
var errRejected = errors.New("cluster: request rejected by shard")

// ErrEpochChanged reports a query that straddled repeated membership
// changes: every re-scatter attempt saw the manifest epoch advance under
// it. The caller may simply retry.
var ErrEpochChanged = errors.New("cluster: membership changed during query")

// gidSeqBits splits a cluster-global point id into (member, sequence):
// the high 16 bits carry the member id, the low 48 the engine-local
// sequence number the member assigned.
const gidSeqBits = 48

// EncodeID packs a member id and an engine-local point id into one
// cluster-global id.
func EncodeID(member, seq uint64) (uint64, error) {
	if member == 0 || member >= 1<<(64-gidSeqBits) {
		return 0, fmt.Errorf("cluster: member id %d outside [1,%d)", member, 1<<(64-gidSeqBits))
	}
	if seq >= 1<<gidSeqBits {
		return 0, fmt.Errorf("cluster: local point id %d overflows %d bits", seq, gidSeqBits)
	}
	return member<<gidSeqBits | seq, nil
}

// DecodeID unpacks a cluster-global point id.
func DecodeID(gid uint64) (member, seq uint64) {
	return gid >> gidSeqBits, gid & (1<<gidSeqBits - 1)
}

// SpawnFunc creates the engine/serving backend for a freshly split-off
// member and returns its client. moved is the new member's dataset as an
// engine persistence stream (karl.ReadDynamic decodes it). A SpawnFunc
// failure does not abort the split — the points already left the source —
// so the member is recorded in the manifest as unreachable and queries
// degrade to the partial/indeterminate contract until the operator
// recovers it from the persisted stream.
type SpawnFunc func(ctx context.Context, member shard.Member, moved []byte) (MutableShardClient, error)

// WritableConfig tunes the writable coordinator on top of the read
// Config. The zero value picks production defaults.
type WritableConfig struct {
	Config
	// SplitFactor triggers an automatic split when a member's live weight
	// mass exceeds this multiple of the mean mass of its peers (default 4).
	// A single-member cluster always qualifies once it reaches
	// MinSplitPoints.
	SplitFactor float64
	// MaxShards caps membership growth (default 16; hash routing is
	// additionally capped by the slot space).
	MaxShards int
	// MinSplitPoints is the minimum cardinality before a member may split
	// (default 256) — splitting tiny shards buys nothing.
	MinSplitPoints int
	// ManifestPath, when non-empty, persists the manifest after every
	// membership change (atomic temp+rename). A file already holding an
	// epoch at or ahead of the one being written is rejected with
	// shard.ErrStaleManifest — two coordinators fighting over one path.
	ManifestPath string
	// EpochRetries bounds how often a query is re-scattered after
	// straddling a membership change before ErrEpochChanged (default 2).
	EpochRetries int
	// SplitCheckEvery throttles the automatic split trigger: the probe
	// (one Info round trip per member, serialized under the write lock)
	// runs only after this many points have been inserted since the last
	// probe — running it on every Insert would put N network round trips
	// on every write. Default MinSplitPoints/4.
	SplitCheckEvery int
}

func (c WritableConfig) withDefaults() WritableConfig {
	c.Config = c.Config.withDefaults()
	if c.SplitFactor <= 0 {
		c.SplitFactor = 4
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 16
	}
	if c.MinSplitPoints <= 0 {
		c.MinSplitPoints = 256
	}
	if c.EpochRetries <= 0 {
		c.EpochRetries = 2
	}
	if c.SplitCheckEvery <= 0 {
		c.SplitCheckEvery = c.MinSplitPoints / 4
		if c.SplitCheckEvery < 1 {
			c.SplitCheckEvery = 1
		}
	}
	return c
}

// WritableShard names one founding member of a writable cluster.
type WritableShard struct {
	Name   string
	Client MutableShardClient
	// Followers are replication followers attached to this member: read
	// hedge/failover targets while the member is healthy, promotion
	// candidates when it dies. The caller owns their catch-up loops.
	Followers []FollowerClient
}

// membership is one immutable epoch of the cluster: the routing manifest,
// the mutable clients by member id (absent entries are unreachable
// members), and a read coordinator built over exactly this client set.
type membership struct {
	man     *shard.Manifest
	clients map[uint64]MutableShardClient
	co      *Coordinator
}

// WritableCoordinator routes writes through a dynamic manifest and serves
// reads through the current epoch's Coordinator. Writes and membership
// changes serialize on mu; reads are lock-free against an atomic
// membership snapshot, guarded by the gen seqlock.
type WritableCoordinator struct {
	cfg   WritableConfig
	spawn SpawnFunc

	mu         sync.Mutex // serializes writes, splits, membership installs
	nextID     uint64     // next member id to assign
	sinceProbe int        // points inserted since the last split probe

	// followers maps member id to its attached replication followers
	// (guarded by mu; promotion moves a follower out of this map and into
	// the clients of the next membership).
	followers map[uint64][]FollowerClient

	// gen is even between membership changes and odd while one is in
	// flight; a query whose start and end generations differ (or that
	// starts on an odd one) re-scatters.
	gen atomic.Uint64
	mem atomic.Pointer[membership]

	splits      atomic.Int64
	rescatters  atomic.Int64
	promotions  atomic.Int64
	quarantines atomic.Int64
}

// NewWritable founds a writable cluster over the given members with
// routing kind `kind` (hash slots, or a kd tree which must start from
// exactly one member and grows by splits). A nil spawn disables
// splitting entirely — automatic and forced.
func NewWritable(ctx context.Context, kind shard.Kind, shards []WritableShard, spawn SpawnFunc, cfg WritableConfig) (*WritableCoordinator, error) {
	cfg = cfg.withDefaults()
	members := make([]shard.Member, len(shards))
	clients := make(map[uint64]MutableShardClient, len(shards))
	followers := map[uint64][]FollowerClient{}
	for i, sp := range shards {
		if sp.Client == nil {
			return nil, fmt.Errorf("cluster: founding shard %d has no client", i)
		}
		id := uint64(i + 1)
		name := sp.Name
		if name == "" {
			name = sp.Client.Name()
		}
		members[i] = shard.Member{ID: id, Name: name}
		clients[id] = sp.Client
		if len(sp.Followers) > 0 {
			followers[id] = append([]FollowerClient(nil), sp.Followers...)
		}
	}
	man, err := shard.NewManifest(kind, members)
	if err != nil {
		return nil, err
	}
	w := &WritableCoordinator{cfg: cfg, spawn: spawn, nextID: uint64(len(shards) + 1), followers: followers}
	m, err := w.buildMembership(ctx, man, clients, false)
	if err != nil {
		return nil, err
	}
	w.mem.Store(m)
	if err := w.persist(man); err != nil {
		return nil, err
	}
	return w, nil
}

// ResumeWritable restarts a coordinator over a previously persisted
// manifest (LoadManifest): membership, routing, lineage and the epoch all
// come from the manifest, so cluster-global ids handed out before the
// restart keep resolving. shards supplies clients for the members that
// are reachable again, matched to manifest members by name (karl-serve
// uses the shard base URL as the name, so the same -shards list
// re-attaches). A member with no matching client — or whose client does
// not answer — serves as an unreachable stub: its weight mass stays in
// the coverage denominator, so answers degrade to the explicit partial
// contract until the operator restores it. A shard whose name matches no
// manifest member is rejected loudly: it belongs to a different cluster.
//
// Nothing is persisted at resume time — the manifest on disk already
// carries this epoch, and persist refuses epoch regressions; the next
// membership change writes epoch+1 as usual.
func ResumeWritable(ctx context.Context, man *shard.Manifest, shards []WritableShard, spawn SpawnFunc, cfg WritableConfig) (*WritableCoordinator, error) {
	cfg = cfg.withDefaults()
	byName := make(map[string]uint64, len(man.Members))
	dup := map[string]bool{}
	next := uint64(1)
	for _, mb := range man.Members {
		if _, seen := byName[mb.Name]; seen {
			dup[mb.Name] = true
		}
		byName[mb.Name] = mb.ID
		if mb.ID >= next {
			next = mb.ID + 1
		}
	}
	clients := make(map[uint64]MutableShardClient, len(shards))
	followers := map[uint64][]FollowerClient{}
	for i, sp := range shards {
		if sp.Client == nil {
			return nil, fmt.Errorf("cluster: resumed shard %d has no client", i)
		}
		name := sp.Name
		if name == "" {
			name = sp.Client.Name()
		}
		id, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("cluster: shard %q does not appear in manifest epoch %d", name, man.Epoch)
		}
		if dup[name] {
			return nil, fmt.Errorf("cluster: manifest has several members named %q; cannot match a client unambiguously", name)
		}
		if clients[id] != nil {
			return nil, fmt.Errorf("cluster: duplicate client for member %q", name)
		}
		clients[id] = sp.Client
		if len(sp.Followers) > 0 {
			followers[id] = append([]FollowerClient(nil), sp.Followers...)
		}
	}
	w := &WritableCoordinator{cfg: cfg, spawn: spawn, nextID: next, followers: followers}
	m, err := w.buildMembership(ctx, man.Clone(), clients, true)
	if err != nil {
		return nil, err
	}
	w.mem.Store(m)
	return w, nil
}

// buildMembership assembles one epoch: advisory member stats refreshed
// from live Infos, a read coordinator over the client set (unreachable
// members get a down stub so their mass stays in the coverage
// denominator), and the clients map as given.
//
// In strict mode (founding) a client that does not answer its Info probe
// fails the whole construction — an operator error worth surfacing
// before serving anything. In lenient mode (membership installs while
// the cluster is live, and resume) the member is served to the read
// coordinator as a down stub instead, so the install always goes through
// — critical after a split, where failing to install would leave reads
// running against a source shard that already dropped the moved half.
// The client itself stays in the map: the outage may be transient, and
// writes plus the next membership build will re-probe it.
func (w *WritableCoordinator) buildMembership(ctx context.Context, man *shard.Manifest, clients map[uint64]MutableShardClient, lenient bool) (*membership, error) {
	// Refresh advisory stats and capture the dataset identity from any
	// live member, so down stubs present consistent Info.
	var proto ShardInfo
	infos := make(map[uint64]ShardInfo, len(clients))
	for id, c := range clients {
		ictx, cancel := context.WithTimeout(ctx, w.cfg.Timeout)
		info, err := c.Info(ictx)
		cancel()
		if err != nil {
			if lenient {
				continue // absent from infos: served as a down stub below
			}
			return nil, fmt.Errorf("cluster: member %d (%s): %w", id, c.Name(), err)
		}
		infos[id] = info
		if info.Dims != 0 {
			proto = info
		}
	}
	if proto.Kernel == "" {
		for _, info := range infos {
			proto = info
			break
		}
	}
	specs := make([]Shard, len(man.Members))
	for i := range man.Members {
		mb := &man.Members[i]
		// Caught-up followers join the member's replica list: read hedge
		// targets while the leader answers, read failover when it doesn't.
		live := w.refreshFollowers(ctx, mb)
		if info, ok := infos[mb.ID]; ok {
			mb.Points, mb.WPos, mb.WNeg = info.Points, info.WPos, info.WNeg
			specs[i] = Shard{Client: clients[mb.ID], Replicas: live}
			continue
		}
		// Unreachable member: a stub whose Info carries the manifest's
		// advisory masses keeps its mass in wTotal, so every answer that
		// misses it is flagged partial with honest coverage — never
		// silently complete.
		specs[i] = Shard{Client: downShard{name: mb.Name, info: ShardInfo{
			Points: mb.Points, Dims: proto.Dims, Kernel: proto.Kernel,
			Gamma: proto.Gamma, WPos: mb.WPos, WNeg: mb.WNeg,
		}}, Replicas: live}
	}
	co, err := New(ctx, specs, w.cfg.Config)
	if err != nil {
		return nil, err
	}
	return &membership{man: man, clients: clients, co: co}, nil
}

// downShard is the client stub for a member that is recorded in the
// manifest but has no reachable engine (spawn failed, or it was
// quarantined after an ambiguous split). Info answers from the advisory
// snapshot; everything else fails.
type downShard struct {
	name string
	info ShardInfo
}

func (d downShard) Name() string { return d.name }
func (d downShard) Info(ctx context.Context) (ShardInfo, error) {
	if err := ctx.Err(); err != nil {
		return ShardInfo{}, err
	}
	return d.info, nil
}
func (d downShard) Healthy(context.Context) error {
	return fmt.Errorf("cluster: member %s is unreachable", d.name)
}
func (d downShard) Aggregate(context.Context, []float64) (float64, error) {
	return 0, fmt.Errorf("cluster: member %s is unreachable", d.name)
}
func (d downShard) Bounds(context.Context, []float64, float64) (Bounds, error) {
	return Bounds{}, fmt.Errorf("cluster: member %s is unreachable", d.name)
}

// install publishes a new membership under the seqlock: gen goes odd,
// the snapshot swaps, gen goes even. Callers hold w.mu and must NOT
// already hold the generation odd (splitLocked brackets the whole split
// itself and stores the snapshot directly).
func (w *WritableCoordinator) install(m *membership) {
	w.gen.Add(1) // odd: queries in flight will re-scatter
	w.mem.Store(m)
	w.gen.Add(1) // even again
}

// persist writes the manifest to the configured path (atomic
// temp+rename), refusing to regress an epoch already on disk.
func (w *WritableCoordinator) persist(man *shard.Manifest) error {
	if w.cfg.ManifestPath == "" {
		return nil
	}
	if prev, err := LoadManifest(w.cfg.ManifestPath); err == nil && man.Epoch <= prev.Epoch {
		return fmt.Errorf("%w: disk has epoch %d, refusing to write epoch %d",
			shard.ErrStaleManifest, prev.Epoch, man.Epoch)
	}
	tmp := w.cfg.ManifestPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cluster: persisting manifest: %w", err)
	}
	if _, err := man.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cluster: persisting manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: persisting manifest: %w", err)
	}
	if err := os.Rename(tmp, w.cfg.ManifestPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: persisting manifest: %w", err)
	}
	return nil
}

// LoadManifest reads and validates a persisted cluster manifest.
func LoadManifest(path string) (*shard.Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return shard.ReadManifest(f)
}

// Manifest returns a copy of the current routing manifest.
func (w *WritableCoordinator) Manifest() *shard.Manifest { return w.mem.Load().man.Clone() }

// Dims reports the dataset dimensionality (0 until the first insert when
// founded over empty shards).
func (w *WritableCoordinator) Dims() int { return w.mem.Load().co.Dims() }

// Points reports the total point count as of the current epoch's
// construction.
func (w *WritableCoordinator) Points() int { return w.mem.Load().co.Points() }

// KernelName reports the shared kernel name.
func (w *WritableCoordinator) KernelName() string { return w.mem.Load().co.KernelName() }

// Gamma reports the shared kernel bandwidth parameter.
func (w *WritableCoordinator) Gamma() float64 { return w.mem.Load().co.Gamma() }

// Epoch returns the current manifest epoch.
func (w *WritableCoordinator) Epoch() uint64 { return w.mem.Load().man.Epoch }

// NumShards returns the current member count (including unreachable
// members).
func (w *WritableCoordinator) NumShards() int { return len(w.mem.Load().man.Members) }

// Splits returns how many shard splits have completed.
func (w *WritableCoordinator) Splits() int64 { return w.splits.Load() }

// Rescatters returns how many queries were re-scattered after straddling
// a membership change.
func (w *WritableCoordinator) Rescatters() int64 { return w.rescatters.Load() }

// Stats snapshots the current epoch's per-shard robustness counters.
func (w *WritableCoordinator) Stats() []ShardStats { return w.mem.Load().co.Stats() }

// Health probes the current members.
func (w *WritableCoordinator) Health(ctx context.Context) []ShardHealth {
	return w.mem.Load().co.Health(ctx)
}

// Insert routes points to their owning members via the manifest and
// returns cluster-global ids (member ⊕ engine-local id), in input order.
// Inserts are serialized with membership changes; per-member batches are
// all-or-nothing but the cross-member request is not transactional. On a
// mid-batch failure the error names how many points already landed AND
// the returned slice still carries their ids: entries are non-zero
// exactly for the points that landed (0 is never a valid cluster id —
// member ids start at 1), so the caller can delete the orphans or skip
// them on a retry instead of duplicating them. A successful insert may
// trigger an automatic shard split (spawn configured, weight imbalance
// over SplitFactor, probed once every SplitCheckEvery inserted points);
// split failures never fail the insert.
func (w *WritableCoordinator) Insert(ctx context.Context, points [][]float64, weights []float64) ([]uint64, error) {
	if len(points) == 0 {
		return nil, errors.New("cluster: empty insert")
	}
	if weights != nil && len(weights) != len(points) {
		return nil, fmt.Errorf("cluster: %d weights for %d points", len(weights), len(points))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	m := w.mem.Load()

	// Group per owning member, preserving input order within each group.
	groups := map[uint64][]int{}
	var order []uint64
	for i, p := range points {
		id := m.man.Route(p)
		if _, seen := groups[id]; !seen {
			order = append(order, id)
		}
		groups[id] = append(groups[id], i)
	}
	ids := make([]uint64, len(points))
	landed := 0
	// partial reports the ids assigned so far alongside a mid-batch error
	// (nil when nothing landed — there are no orphans to report).
	partial := func() []uint64 {
		if landed == 0 {
			return nil
		}
		return ids
	}
	for _, mid := range order {
		idxs := groups[mid]
		c := m.clients[mid]
		if c == nil {
			return partial(), fmt.Errorf("cluster: member %d (%s) is unreachable (%d of %d points landed; non-zero returned ids name them)",
				mid, m.man.Member(mid).Name, landed, len(points))
		}
		pts := make([][]float64, len(idxs))
		var ws []float64
		if weights != nil {
			ws = make([]float64, len(idxs))
		}
		for j, i := range idxs {
			pts[j] = points[i]
			if weights != nil {
				ws[j] = weights[i]
			}
		}
		local, err := c.Insert(ctx, pts, ws)
		if err != nil && !errors.Is(err, errRejected) {
			// The member may be dead rather than refusing. Probe it, and
			// when it is gone promote a caught-up follower into its place
			// (same member id — routing and gid lineage are untouched) and
			// retry this group once on the promoted client. A batch that
			// landed just before the member died can have replicated and
			// then be duplicated by the retry — the window is narrow (the
			// health probe must also fail) and within the documented
			// non-transactional insert contract.
			hctx, hcancel := context.WithTimeout(ctx, w.cfg.Timeout)
			herr := c.Healthy(hctx)
			hcancel()
			if herr != nil {
				w.gen.Add(1)
				perr := w.promoteLocked(ctx, mid)
				w.gen.Add(1)
				if perr == nil {
					m = w.mem.Load()
					if c2 := m.clients[mid]; c2 != nil {
						c = c2
						local, err = c.Insert(ctx, pts, ws)
					}
				}
			}
		}
		if err != nil {
			return partial(), fmt.Errorf("cluster: member %d (%s): %w (%d of %d points landed; non-zero returned ids name them)",
				mid, c.Name(), err, landed, len(points))
		}
		if len(local) != len(idxs) {
			return partial(), fmt.Errorf("cluster: member %d returned %d ids for %d points (%d of %d points landed; non-zero returned ids name them)",
				mid, len(local), len(idxs), landed, len(points))
		}
		for j, i := range idxs {
			gid, err := EncodeID(mid, local[j])
			if err != nil {
				return partial(), err
			}
			ids[i] = gid
			landed++
		}
	}
	if m.co.dims == 0 {
		// The founding members were empty; the read coordinator pinned
		// dims at 0. Rebuild it now that the dataset has a dimensionality.
		if m2, err := w.buildMembership(ctx, m.man, m.clients, true); err == nil {
			w.install(m2)
			m = m2
		}
	}
	w.sinceProbe += len(points)
	if w.sinceProbe >= w.cfg.SplitCheckEvery {
		w.sinceProbe = 0
		w.maybeSplitLocked(ctx)
	}
	return ids, nil
}

// Delete removes the point with the given cluster-global id. The id
// routes to the member that assigned it; if that member no longer holds
// the point, the delete chases the split lineage — only descendants whose
// BaseSeq fence admits the sequence number can have inherited it, so a
// fresh point with a recycled-looking id on an unrelated member is never
// touched.
func (w *WritableCoordinator) Delete(ctx context.Context, gid uint64) error {
	mid, seq := DecodeID(gid)
	w.mu.Lock()
	defer w.mu.Unlock()
	m := w.mem.Load()
	if m.man.Member(mid) == nil {
		return fmt.Errorf("cluster: point %d names unknown member %d: %w", gid, mid, karl.ErrPointNotFound)
	}
	unreachable := false
	for _, cand := range lineageCandidates(m.man, mid, seq) {
		c := m.clients[cand]
		if c == nil {
			unreachable = true
			continue
		}
		err := c.Delete(ctx, seq)
		if err == nil {
			return nil
		}
		if !errors.Is(err, karl.ErrPointNotFound) {
			return err
		}
	}
	if unreachable {
		return fmt.Errorf("cluster: point %d may live on an unreachable member: %w", gid, ErrUnavailable)
	}
	return fmt.Errorf("cluster: point %d: %w", gid, karl.ErrPointNotFound)
}

// lineageCandidates returns the members that could hold the point
// (member mid, sequence seq), starting with mid itself and following
// split lineage: a descendant can only have inherited the point if it
// split off after the point existed, i.e. seq < descendant.BaseSeq.
func lineageCandidates(man *shard.Manifest, mid, seq uint64) []uint64 {
	out := []uint64{mid}
	in := map[uint64]bool{mid: true}
	// Members are appended in split order, so one forward pass reaches
	// descendants before their own descendants.
	for _, mb := range man.Members {
		if !in[mb.ID] && in[mb.Parent] && seq < mb.BaseSeq {
			in[mb.ID] = true
			out = append(out, mb.ID)
		}
	}
	return out
}

// maybeSplitLocked runs the automatic split trigger: the heaviest member
// splits when its live weight mass exceeds SplitFactor times the mean of
// its peers (a lone member always qualifies), it holds at least
// MinSplitPoints points, and the membership has room. Failures are
// swallowed — splitting is maintenance, not a write-path obligation. The
// probe costs one Info round trip per member under the write lock, so
// the insert path invokes it only once every SplitCheckEvery inserted
// points rather than on every call.
func (w *WritableCoordinator) maybeSplitLocked(ctx context.Context) {
	if w.spawn == nil {
		return
	}
	m := w.mem.Load()
	if len(m.man.Members) >= w.cfg.MaxShards {
		return
	}
	var heavy uint64
	var heavyW, totalW float64
	heavyPts, alive := 0, 0
	for id, c := range m.clients {
		ictx, cancel := context.WithTimeout(ctx, w.cfg.Timeout)
		info, err := c.Info(ictx)
		cancel()
		if err != nil {
			continue
		}
		alive++
		wgt := info.Weight()
		totalW += wgt
		if heavy == 0 || wgt > heavyW {
			heavy, heavyW, heavyPts = id, wgt, info.Points
		}
	}
	if heavy == 0 || heavyPts < w.cfg.MinSplitPoints {
		return
	}
	if alive > 1 {
		peerMean := (totalW - heavyW) / float64(alive-1)
		if heavyW <= w.cfg.SplitFactor*peerMean {
			return
		}
	}
	_ = w.splitLocked(ctx, heavy)
}

// Split forces a split of the given member (tests, operational
// rebalancing). It respects MaxShards but not the weight trigger.
func (w *WritableCoordinator) Split(ctx context.Context, memberID uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.mem.Load().man.Members) >= w.cfg.MaxShards {
		return fmt.Errorf("cluster: membership already at MaxShards (%d)", w.cfg.MaxShards)
	}
	return w.splitLocked(ctx, memberID)
}

// splitLocked executes one shard split under w.mu:
//
//  1. derive the split rule (move half the member's hash slots, or let a
//     kd member choose its own balanced plane),
//  2. SplitOut — the member atomically extracts the moving half and ships
//     it back as a persistence stream,
//  3. spawn the new member's engine from the stream,
//  4. apply the rule to the manifest (epoch+1, lineage recorded) and
//     install the new membership.
//
// A clean shard-side refusal (errRejected) aborts with nothing changed.
// An ambiguous failure — the split may or may not have been applied, but
// the moved half is not in hand — quarantines the source member: its
// client is dropped so every future answer that would need its (now
// unknowable) contents is flagged partial/indeterminate instead of being
// silently wrong. A spawn failure records the new member as unreachable
// for the same reason; its dataset survives in the persisted stream the
// spawner received.
//
// The generation counter goes odd immediately before SplitOut and even
// only on return: from the instant the source shard drops the moved half
// until the post-split membership is published, the moved mass belongs to
// no queryable member, so a read that ran to completion inside that
// window would return a silently reduced sum. Holding the seqlock odd
// makes such reads wait (snapshot polls, bounded by their context) and
// makes reads that started earlier re-scatter — the window can span
// spawn/Info round trips, trading read latency during a split for the
// never-silently-wrong contract.
func (w *WritableCoordinator) splitLocked(ctx context.Context, srcID uint64) error {
	if w.spawn == nil {
		return errors.New("cluster: no spawner configured")
	}
	m := w.mem.Load()
	src := m.clients[srcID]
	if src == nil {
		return fmt.Errorf("cluster: member %d has no reachable client", srcID)
	}
	var rule shard.SplitRule
	auto := false
	switch m.man.Kind {
	case shard.Hash:
		slots := m.man.MemberSlots(srcID)
		if len(slots) < 2 {
			return fmt.Errorf("cluster: member %d owns %d hash slots, cannot split", srcID, len(slots))
		}
		rule = shard.SplitRule{Kind: shard.Hash, NumSlots: m.man.NumSlots, Slots: slots[len(slots)/2:]}
	case shard.KDSplit:
		rule = shard.SplitRule{Kind: shard.KDSplit}
		auto = true
	default:
		return fmt.Errorf("cluster: unknown routing kind %v", m.man.Kind)
	}

	// Destructive step ahead: seqlock odd across the whole split so no
	// read completes against the half-moved state (see the doc comment).
	w.gen.Add(1)
	defer w.gen.Add(1)

	res, err := src.SplitOut(ctx, rule, auto)
	if err != nil {
		if errors.Is(err, errRejected) {
			return err // clean refusal: nothing moved, membership unchanged
		}
		return errors.Join(err, w.failoverLocked(ctx, srcID))
	}

	newID := w.nextID
	w.nextID++
	member := shard.Member{
		ID:      newID,
		Name:    fmt.Sprintf("%s/split-%d", src.Name(), newID),
		BaseSeq: res.Fence,
		Points:  res.Points,
		WPos:    res.WPos,
		WNeg:    res.WNeg,
	}
	man2, err := m.man.ApplySplit(srcID, member, res.Rule)
	if err != nil {
		// The points already left the source; failing over (or
		// quarantining) it keeps the accounting honest even on this
		// (programmer-error) path.
		return errors.Join(err, w.failoverLocked(ctx, srcID))
	}
	clients2 := make(map[uint64]MutableShardClient, len(m.clients)+1)
	for id, c := range m.clients {
		clients2[id] = c
	}
	var spawnErr error
	if client, err := w.spawn(ctx, member, res.Moved); err != nil {
		spawnErr = fmt.Errorf("cluster: spawning member %d: %w", newID, err)
	} else {
		clients2[newID] = client
		// A process spawner only learns the child's address after it
		// starts, so the placeholder name chosen above may not be the
		// one the client answers to. The manifest must record the
		// client's own name — ResumeWritable re-attaches members by
		// name (karl-serve uses the base URL), and a name the spawner
		// invented would orphan the member on the next restart.
		if n := client.Name(); n != "" && n != member.Name {
			man2.Member(newID).Name = n
		}
	}
	// Lenient build: a member that does not answer its Info probe is
	// served as a down stub rather than failing the install — aborting
	// here would leave reads on a membership whose source shard already
	// dropped the moved half.
	m2, err := w.buildMembership(ctx, man2, clients2, true)
	if err != nil {
		return errors.Join(spawnErr, err)
	}
	// Published inside the odd-generation window splitLocked holds; the
	// deferred increment makes it visible to waiting reads.
	w.mem.Store(m2)
	w.splits.Add(1)
	if err := w.persist(man2); err != nil {
		return errors.Join(spawnErr, err)
	}
	return spawnErr
}

// quarantineLocked drops a member's client after an ambiguous failure:
// the member stays in the manifest (mass accounted, routing unchanged)
// but is treated as unreachable, and the epoch advances so in-flight
// queries re-scatter onto the degraded membership. Callers hold both
// w.mu and the odd-generation window of splitLocked, so the snapshot is
// stored directly — the caller's deferred increment publishes it.
func (w *WritableCoordinator) quarantineLocked(ctx context.Context, id uint64) error {
	m := w.mem.Load()
	clients2 := make(map[uint64]MutableShardClient, len(m.clients))
	for cid, c := range m.clients {
		if cid != id {
			clients2[cid] = c
		}
	}
	man2 := m.man.Clone()
	man2.Epoch++
	m2, err := w.buildMembership(ctx, man2, clients2, true)
	if err != nil {
		return err
	}
	w.mem.Store(m2)
	w.quarantines.Add(1)
	return w.persist(man2)
}

// snapshot returns the current membership under an even generation,
// waiting out an in-flight membership change (bounded by ctx).
func (w *WritableCoordinator) snapshot(ctx context.Context) (*membership, uint64, error) {
	for {
		g := w.gen.Load()
		if g%2 == 0 {
			m := w.mem.Load()
			if w.gen.Load() == g {
				return m, g, nil
			}
			continue
		}
		select {
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// query runs fn against a consistent membership snapshot, re-scattering
// when the generation advanced underneath it — the straddle could have
// mixed pre- and post-split shard states into one sum.
func query[T any](ctx context.Context, w *WritableCoordinator, fn func(*Coordinator) (T, error)) (T, error) {
	var zero T
	for attempt := 0; ; attempt++ {
		m, g, err := w.snapshot(ctx)
		if err != nil {
			return zero, err
		}
		v, err := fn(m.co)
		if w.gen.Load() == g {
			return v, err
		}
		w.rescatters.Add(1)
		if attempt >= w.cfg.EpochRetries {
			return zero, fmt.Errorf("%w: %d re-scatters exhausted (epoch now %d)",
				ErrEpochChanged, attempt+1, w.Epoch())
		}
	}
}

// Aggregate computes F_P(q) exactly over the current membership; see
// Coordinator.Aggregate for the degradation contract.
func (w *WritableCoordinator) Aggregate(ctx context.Context, q []float64) (Result, error) {
	return query(ctx, w, func(co *Coordinator) (Result, error) { return co.Aggregate(ctx, q) })
}

// Threshold decides F_P(q) > τ over the current membership; see
// Coordinator.Threshold.
func (w *WritableCoordinator) Threshold(ctx context.Context, q []float64, tau float64) (ThresholdResult, error) {
	return query(ctx, w, func(co *Coordinator) (ThresholdResult, error) { return co.Threshold(ctx, q, tau) })
}

// Approximate computes F_P(q) to relative error eps over the current
// membership; see Coordinator.Approximate.
func (w *WritableCoordinator) Approximate(ctx context.Context, q []float64, eps float64) (Result, error) {
	return query(ctx, w, func(co *Coordinator) (Result, error) { return co.Approximate(ctx, q, eps) })
}
