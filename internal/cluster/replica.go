// Replication-aware membership: followers attached to writable-cluster
// members serve as read hedge targets while their leader is healthy and
// as promotion candidates when it dies. The failover path keeps gid
// lineage intact — a promoted follower takes over the member's ID (and
// with it every cluster-global id the member ever assigned), only the
// member's name changes to the follower's.
package cluster

import (
	"context"
	"fmt"

	"karl/internal/replica"
	"karl/internal/shard"
)

// FollowerClient is a replication follower attached to a writable-cluster
// member: a read client the coordinator can hedge and fail over queries
// to, plus the replication controls — status for lag accounting and
// Promote for leader failover.
type FollowerClient interface {
	ShardClient
	// ReplicaStatus reports the follower's catch-up state and watermark.
	ReplicaStatus(ctx context.Context) (replica.Status, error)
	// Promote turns the follower into a leader and returns the mutable
	// client the coordinator routes the member's writes to from now on.
	Promote(ctx context.Context) (MutableShardClient, error)
}

// LocalFollower serves an in-process replication applier as a
// FollowerClient: reads come from the applier's engine through the usual
// clone pool, promotion hands the engine over as a local mutable shard.
type LocalFollower struct {
	*LocalShard
	applier *replica.Applier
}

// NewLocalFollower wraps an applier (driven elsewhere — the caller owns
// its Sync/Run loop) as a follower client named name.
func NewLocalFollower(name string, a *replica.Applier) *LocalFollower {
	return &LocalFollower{LocalShard: NewLocalShard(name, a.Engine()), applier: a}
}

// Applier returns the wrapped applier (so the owner can drive catch-up).
func (f *LocalFollower) Applier() *replica.Applier { return f.applier }

// ReplicaStatus implements FollowerClient.
func (f *LocalFollower) ReplicaStatus(ctx context.Context) (replica.Status, error) {
	if err := ctx.Err(); err != nil {
		return replica.Status{}, err
	}
	return f.applier.Status(), nil
}

// Promote implements FollowerClient.
func (f *LocalFollower) Promote(ctx context.Context) (MutableShardClient, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return NewLocalMutableShard(f.Name(), f.applier.Promote()), nil
}

// ReplicaStatus makes HTTPShard a FollowerClient via GET
// /v1/replicate/status — a karl-serve -replica-of process.
func (s *HTTPShard) ReplicaStatus(ctx context.Context) (replica.Status, error) {
	var st replica.Status
	if err := s.get(ctx, "/v1/replicate/status", &st); err != nil {
		return replica.Status{}, err
	}
	return st, nil
}

// Promote makes HTTPShard a FollowerClient via POST /v1/replicate/promote:
// the remote applier stops pulling and its write endpoints open, so the
// same base URL now serves as the member's mutable client.
func (s *HTTPShard) Promote(ctx context.Context) (MutableShardClient, error) {
	var st replica.Status
	if err := s.post(ctx, "/v1/replicate/promote", struct{}{}, &st); err != nil {
		return nil, err
	}
	return s, nil
}

// refreshFollowers probes member mb's attached followers, rewrites the
// manifest member's replica set from the live answers (role from
// catch-up state, acked-seq watermark from the fence), and returns the
// caught-up ones as read failover targets. Unreachable followers stay
// recorded as catching-up so the topology is never silently forgotten.
// Called with w.mu held or during construction.
func (w *WritableCoordinator) refreshFollowers(ctx context.Context, mb *shard.Member) []ShardClient {
	fols := w.followers[mb.ID]
	if len(fols) == 0 {
		return nil
	}
	reps := make([]shard.Replica, 0, len(fols))
	var live []ShardClient
	for _, f := range fols {
		rctx, cancel := context.WithTimeout(ctx, w.cfg.Timeout)
		st, err := f.ReplicaStatus(rctx)
		cancel()
		role := shard.RoleCatchingUp
		var acked uint64
		if err == nil {
			acked = st.Fence
			if st.State == replica.StateLive.String() {
				role = shard.RoleFollower
				live = append(live, f)
			}
		}
		reps = append(reps, shard.Replica{Name: f.Name(), Role: role, AckedSeq: acked})
	}
	mb.Replicas = reps
	return live
}

// promoteLocked replaces member id's client with a caught-up follower:
// the follower is promoted (it stops pulling and opens writes), the
// manifest applies the promotion (member keeps its ID — gid lineage and
// routing survive — and takes the follower's name, epoch+1), and the new
// membership is stored. Callers hold w.mu and the odd-generation window;
// the snapshot is stored directly and the caller's increment publishes
// it.
func (w *WritableCoordinator) promoteLocked(ctx context.Context, id uint64) error {
	m := w.mem.Load()
	mb := m.man.Member(id)
	if mb == nil {
		return fmt.Errorf("cluster: promotion target member %d not in manifest", id)
	}
	var chosen FollowerClient
	var chosenStatus replica.Status
	remaining := make([]FollowerClient, 0, len(w.followers[id]))
	for _, f := range w.followers[id] {
		if chosen != nil {
			remaining = append(remaining, f)
			continue
		}
		sctx, cancel := context.WithTimeout(ctx, w.cfg.Timeout)
		st, err := f.ReplicaStatus(sctx)
		cancel()
		if err != nil || st.State != replica.StateLive.String() {
			remaining = append(remaining, f)
			continue
		}
		chosen, chosenStatus = f, st
	}
	if chosen == nil {
		return fmt.Errorf("cluster: member %d (%s) has no caught-up follower to promote", id, mb.Name)
	}
	client, err := chosen.Promote(ctx)
	if err != nil {
		return fmt.Errorf("cluster: promoting follower %s of member %d: %w", chosen.Name(), id, err)
	}
	// The manifest's recorded replica set may lag the probe we just made
	// (or miss the follower entirely after a resume): make the entry a
	// caught-up follower before applying the promotion rule.
	man1 := m.man.Clone()
	cb := man1.Member(id)
	found := false
	for i := range cb.Replicas {
		if cb.Replicas[i].Name == chosen.Name() {
			cb.Replicas[i].Role = shard.RoleFollower
			cb.Replicas[i].AckedSeq = chosenStatus.Fence
			found = true
		}
	}
	if !found {
		cb.Replicas = append(cb.Replicas, shard.Replica{
			Name: chosen.Name(), Role: shard.RoleFollower, AckedSeq: chosenStatus.Fence,
		})
	}
	man2, err := man1.ApplyPromotion(id, chosen.Name())
	if err != nil {
		return err
	}
	clients2 := make(map[uint64]MutableShardClient, len(m.clients))
	for cid, c := range m.clients {
		clients2[cid] = c
	}
	clients2[id] = client
	if len(remaining) > 0 {
		w.followers[id] = remaining
	} else {
		delete(w.followers, id)
	}
	m2, err := w.buildMembership(ctx, man2, clients2, true)
	if err != nil {
		return err
	}
	w.mem.Store(m2)
	w.promotions.Add(1)
	return w.persist(man2)
}

// failoverLocked recovers from losing member id: promote a caught-up
// follower into its place when one exists, quarantine the member
// otherwise (dropping its client so answers that would need its unknown
// contents are flagged partial). Callers hold w.mu and the odd-generation
// window.
func (w *WritableCoordinator) failoverLocked(ctx context.Context, id uint64) error {
	if err := w.promoteLocked(ctx, id); err == nil {
		return nil
	}
	return w.quarantineLocked(ctx, id)
}

// Promote forces a leader failover of the given member onto one of its
// caught-up followers (operational use; the write path and the split
// orchestrator invoke the same transition automatically when a member
// dies).
func (w *WritableCoordinator) Promote(ctx context.Context, memberID uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.gen.Add(1)
	defer w.gen.Add(1)
	return w.promoteLocked(ctx, memberID)
}

// Promotions returns how many leader failovers have completed.
func (w *WritableCoordinator) Promotions() int64 { return w.promotions.Load() }

// Quarantines returns how many members were quarantined (client dropped
// after an ambiguous failure with no follower to promote).
func (w *WritableCoordinator) Quarantines() int64 { return w.quarantines.Load() }

// ClusterReplicaStatus is one follower's row in the cluster status block.
type ClusterReplicaStatus struct {
	Name string `json:"name"`
	// State is the follower's catch-up state ("snapshot", "catching-up",
	// "live"), or "unreachable" when its status probe failed, or a
	// manifest-recorded role for followers with no attached client.
	State string `json:"state"`
	// AckedSeq is the follower's replication watermark (highest leader
	// seq applied).
	AckedSeq uint64 `json:"acked_seq"`
	// Lag is the leader-seq minus applied-seq distance at the follower's
	// last completed pull.
	Lag uint64 `json:"lag"`
}

// ClusterMemberStatus is one member's row in the cluster status block.
type ClusterMemberStatus struct {
	ID   uint64 `json:"id"`
	Name string `json:"name"`
	Role string `json:"role"`
	// Quarantined reports a member recorded in the manifest with no
	// reachable client — its mass stays in the coverage denominator.
	Quarantined bool                   `json:"quarantined"`
	Points      int                    `json:"points"`
	Replicas    []ClusterReplicaStatus `json:"replicas,omitempty"`
}

// ClusterStatus is the replication/membership observability block served
// under "cluster" in the writable coordinator's /v1/stats.
type ClusterStatus struct {
	Epoch       uint64                `json:"epoch"`
	Members     []ClusterMemberStatus `json:"members"`
	Splits      int64                 `json:"splits"`
	Promotions  int64                 `json:"promotions"`
	Quarantines int64                 `json:"quarantines"`
	Rescatters  int64                 `json:"rescatters"`
}

// ClusterStatus snapshots the membership with live replication lag: one
// status probe per attached follower (bounded by the per-shard timeout),
// falling back to the manifest-recorded replica set for members whose
// followers have no attached client (e.g. after a resume).
func (w *WritableCoordinator) ClusterStatus(ctx context.Context) ClusterStatus {
	m := w.mem.Load()
	w.mu.Lock()
	fols := make(map[uint64][]FollowerClient, len(w.followers))
	for id, fs := range w.followers {
		fols[id] = append([]FollowerClient(nil), fs...)
	}
	w.mu.Unlock()
	cs := ClusterStatus{
		Epoch:       m.man.Epoch,
		Splits:      w.splits.Load(),
		Promotions:  w.promotions.Load(),
		Quarantines: w.quarantines.Load(),
		Rescatters:  w.rescatters.Load(),
	}
	for _, mb := range m.man.Members {
		ms := ClusterMemberStatus{
			ID:          mb.ID,
			Name:        mb.Name,
			Role:        mb.Role.String(),
			Quarantined: m.clients[mb.ID] == nil,
			Points:      mb.Points,
		}
		if attached := fols[mb.ID]; len(attached) > 0 {
			for _, f := range attached {
				rctx, cancel := context.WithTimeout(ctx, w.cfg.Timeout)
				st, err := f.ReplicaStatus(rctx)
				cancel()
				if err != nil {
					ms.Replicas = append(ms.Replicas, ClusterReplicaStatus{Name: f.Name(), State: "unreachable"})
					continue
				}
				ms.Replicas = append(ms.Replicas, ClusterReplicaStatus{
					Name: f.Name(), State: st.State, AckedSeq: st.Fence, Lag: st.Lag(),
				})
			}
		} else {
			for _, r := range mb.Replicas {
				ms.Replicas = append(ms.Replicas, ClusterReplicaStatus{
					Name: r.Name, State: r.Role.String(), AckedSeq: r.AckedSeq,
				})
			}
		}
		cs.Members = append(cs.Members, ms)
	}
	return cs
}
