package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"karl"
	"karl/internal/server"
)

// dataset builds a deterministic point cloud plus weights of the given
// query type: Type I (unweighted), Type II (positive weights), Type III
// (mixed-sign weights).
func dataset(n, d int, seed int64, typ string) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		pts[i] = row
	}
	var w []float64
	switch typ {
	case "II":
		w = make([]float64, n)
		for i := range w {
			w[i] = 0.1 + 2*rng.Float64()
		}
	case "III":
		w = make([]float64, n)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
	}
	return pts, w
}

func buildEngine(t testing.TB, pts [][]float64, w []float64, kern karl.Kernel, kind karl.IndexKind) *karl.Engine {
	t.Helper()
	opts := []karl.Option{karl.WithIndex(kind, 16)}
	if w != nil {
		opts = append(opts, karl.WithWeights(w))
	}
	eng, err := karl.Build(pts, kern, opts...)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return eng
}

// localCoordinator shards an engine four ways and serves the pieces
// through in-process shard clients.
func localCoordinator(t testing.TB, eng *karl.Engine, cfg Config) *Coordinator {
	t.Helper()
	shards, _, err := eng.Shard(4, karl.HashPartition)
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	specs := make([]Shard, len(shards))
	for i, se := range shards {
		specs[i] = Shard{Client: NewLocalShard(fmt.Sprintf("shard-%d", i), se)}
	}
	co, err := New(context.Background(), specs, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return co
}

// TestCoordinatorEquivalence is the acceptance gate: across index
// structures, query types and kernels, a 4-shard coordinator must agree
// with the monolithic engine — exact aggregates within FP tolerance,
// threshold verdicts equal away from ties, approximate answers within the
// global ε.
func TestCoordinatorEquivalence(t *testing.T) {
	kinds := map[string]karl.IndexKind{"kd": karl.KDTree, "ball": karl.BallTree, "vp": karl.VPTree}
	kernels := map[string]karl.Kernel{
		"gaussian":     karl.Gaussian(0.5),
		"epanechnikov": karl.Epanechnikov(0.2),
		"sigmoid":      karl.Sigmoid(0.05, 0.1),
	}
	const eps = 0.05
	ctx := context.Background()
	for kindName, kind := range kinds {
		for _, typ := range []string{"I", "II", "III"} {
			for kernName, kern := range kernels {
				t.Run(fmt.Sprintf("%s/%s/%s", kindName, typ, kernName), func(t *testing.T) {
					pts, w := dataset(400, 3, 7, typ)
					mono := buildEngine(t, pts, w, kern, kind)
					co := localCoordinator(t, mono, Config{})

					queries, _ := dataset(5, 3, 11, "I")
					for qi, q := range queries {
						exact, err := mono.Aggregate(q)
						if err != nil {
							t.Fatalf("mono.Aggregate: %v", err)
						}
						scale := math.Max(math.Abs(exact), 1)

						res, err := co.Aggregate(ctx, q)
						if err != nil {
							t.Fatalf("co.Aggregate: %v", err)
						}
						if res.Partial || res.Covered != 1 {
							t.Fatalf("q%d: unexpected partial result %+v", qi, res)
						}
						if diff := math.Abs(res.Value - exact); diff > 1e-9*scale {
							t.Errorf("q%d: aggregate %v, want %v (diff %g)", qi, res.Value, exact, diff)
						}

						// Thresholds placed away from the tie at the exact value.
						margin := math.Max(0.05*math.Abs(exact), 1e-3)
						for _, tau := range []float64{exact - margin, exact + margin} {
							tr, err := co.Threshold(ctx, q, tau)
							if err != nil {
								t.Fatalf("q%d: co.Threshold(%v): %v", qi, tau, err)
							}
							if want := exact > tau; tr.Over != want {
								t.Errorf("q%d: threshold(%v) = %v, want %v (exact %v)", qi, tau, tr.Over, want, exact)
							}
							if tr.Partial {
								t.Errorf("q%d: threshold unexpectedly partial", qi)
							}
						}

						ar, err := co.Approximate(ctx, q, eps)
						if err != nil {
							t.Fatalf("q%d: co.Approximate: %v", qi, err)
						}
						if tol := eps*math.Abs(exact) + 1e-9*scale; math.Abs(ar.Value-exact) > tol {
							t.Errorf("q%d: approximate %v outside ±%g of %v", qi, ar.Value, tol, exact)
						}
						if ar.LB-1e-9*scale > exact || ar.UB+1e-9*scale < exact {
							t.Errorf("q%d: exact %v outside certified [%v, %v]", qi, exact, ar.LB, ar.UB)
						}
					}
				})
			}
		}
	}
}

// flakyShard wraps a ShardClient and can be switched off (every call
// fails) or made to fail the next k calls.
type flakyShard struct {
	ShardClient
	down      atomic.Bool
	failNext  atomic.Int64
	delay     time.Duration
	callCount atomic.Int64
}

func (f *flakyShard) trip() error {
	f.callCount.Add(1)
	if f.down.Load() {
		return errors.New("shard down (test)")
	}
	if f.failNext.Load() > 0 && f.failNext.Add(-1) >= 0 {
		return errors.New("transient failure (test)")
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return nil
}

func (f *flakyShard) Info(ctx context.Context) (ShardInfo, error) {
	if err := f.trip(); err != nil {
		return ShardInfo{}, err
	}
	return f.ShardClient.Info(ctx)
}

func (f *flakyShard) Aggregate(ctx context.Context, q []float64) (float64, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.ShardClient.Aggregate(ctx, q)
}

func (f *flakyShard) Bounds(ctx context.Context, q []float64, eps float64) (Bounds, error) {
	if err := f.trip(); err != nil {
		return Bounds{}, err
	}
	return f.ShardClient.Bounds(ctx, q, eps)
}

func (f *flakyShard) Healthy(ctx context.Context) error {
	if err := f.trip(); err != nil {
		return err
	}
	return f.ShardClient.Healthy(ctx)
}

// TestRetryRecoversTransientFailure exercises the retry rung: a shard
// failing exactly once per query is healed by the single retry and the
// result is complete, with the retry counted.
func TestRetryRecoversTransientFailure(t *testing.T) {
	pts, _ := dataset(200, 2, 3, "I")
	mono := buildEngine(t, pts, nil, karl.Gaussian(1), karl.KDTree)
	shards, _, err := mono.Shard(2, karl.HashPartition)
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	flaky := &flakyShard{ShardClient: NewLocalShard("flaky", shards[0])}
	specs := []Shard{
		{Client: flaky},
		{Client: NewLocalShard("steady", shards[1])},
	}
	co, err := New(context.Background(), specs, Config{Backoff: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	q := []float64{0.3, -0.2}
	exact, _ := mono.Aggregate(q)
	flaky.failNext.Store(1)
	res, err := co.Aggregate(context.Background(), q)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if res.Partial {
		t.Fatalf("retry should have healed the transient failure: %+v", res)
	}
	if math.Abs(res.Value-exact) > 1e-9 {
		t.Fatalf("value %v, want %v", res.Value, exact)
	}
	if got := co.shards[0].retries.Load(); got < 1 {
		t.Fatalf("retries counter = %d, want >= 1", got)
	}
}

// TestHedgeWinsOverSlowPrimary exercises the hedge rung: once the latency
// window is warm, a slow primary triggers a hedged request to the replica,
// which wins.
func TestHedgeWinsOverSlowPrimary(t *testing.T) {
	pts, _ := dataset(200, 2, 5, "I")
	mono := buildEngine(t, pts, nil, karl.Gaussian(1), karl.KDTree)
	shards, _, err := mono.Shard(2, karl.HashPartition)
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	slow := &flakyShard{ShardClient: NewLocalShard("slow-primary", shards[0]), delay: 200 * time.Millisecond}
	replica := NewLocalShard("replica", shards[0])
	specs := []Shard{
		{Client: slow, Replicas: []ShardClient{replica}},
		{Client: NewLocalShard("steady", shards[1])},
	}
	co, err := New(context.Background(), specs, Config{HedgeMin: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Warm the latency window with fast samples so the hedge arms at ~1ms.
	for i := 0; i < warmSamples; i++ {
		co.shards[0].lat.record(100 * time.Microsecond)
	}

	q := []float64{0.1, 0.4}
	exact, _ := mono.Aggregate(q)
	start := time.Now()
	res, err := co.Aggregate(context.Background(), q)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if math.Abs(res.Value-exact) > 1e-9 {
		t.Fatalf("value %v, want %v", res.Value, exact)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("hedge did not shortcut the slow primary (took %v)", elapsed)
	}
	if co.shards[0].hedges.Load() < 1 || co.shards[0].hedgeWins.Load() < 1 {
		t.Fatalf("hedges=%d hedgeWins=%d, want >= 1 each",
			co.shards[0].hedges.Load(), co.shards[0].hedgeWins.Load())
	}
}

// downableHandler wraps an HTTP handler with a kill switch, simulating a
// shard crash (connection-level refusal) without tearing down listeners.
type downableHandler struct {
	inner http.Handler
	down  atomic.Bool
}

func (d *downableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d.down.Load() {
		// Hijack-and-drop where possible to look like a crashed process;
		// otherwise a bare 500 with no body.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	d.inner.ServeHTTP(w, r)
}

// httpCluster spins up one httptest server per shard engine and returns
// the coordinator plus the kill switches.
func httpCluster(t testing.TB, shards []*karl.Engine, cfg Config) (*Coordinator, []*downableHandler) {
	t.Helper()
	specs := make([]Shard, len(shards))
	switches := make([]*downableHandler, len(shards))
	for i, se := range shards {
		srv, err := server.New(se)
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		dh := &downableHandler{inner: srv}
		ts := httptest.NewServer(dh)
		t.Cleanup(ts.Close)
		switches[i] = dh
		specs[i] = Shard{Client: NewHTTPShard(ts.URL)}
	}
	co, err := New(context.Background(), specs, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return co, switches
}

// TestCoordinatorHTTPEquivalence runs the equivalence check over real
// HTTP shards: the coordinator speaking JSON to four karl-serve handlers
// must match the monolithic engine.
func TestCoordinatorHTTPEquivalence(t *testing.T) {
	pts, w := dataset(400, 3, 13, "III")
	mono := buildEngine(t, pts, w, karl.Gaussian(0.5), karl.KDTree)
	shards, _, err := mono.Shard(4, karl.KDPartition)
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	co, _ := httpCluster(t, shards, Config{})
	ctx := context.Background()

	queries, _ := dataset(5, 3, 17, "I")
	for qi, q := range queries {
		exact, _ := mono.Aggregate(q)
		res, err := co.Aggregate(ctx, q)
		if err != nil {
			t.Fatalf("q%d: Aggregate: %v", qi, err)
		}
		if math.Abs(res.Value-exact) > 1e-9*math.Max(math.Abs(exact), 1) {
			t.Errorf("q%d: aggregate %v, want %v", qi, res.Value, exact)
		}
		ar, err := co.Approximate(ctx, q, 0.05)
		if err != nil {
			t.Fatalf("q%d: Approximate: %v", qi, err)
		}
		if math.Abs(ar.Value-exact) > 0.05*math.Abs(exact)+1e-9 {
			t.Errorf("q%d: approximate %v vs exact %v", qi, ar.Value, exact)
		}
		margin := math.Max(0.05*math.Abs(exact), 1e-3)
		tr, err := co.Threshold(ctx, q, exact-margin)
		if err != nil {
			t.Fatalf("q%d: Threshold: %v", qi, err)
		}
		if !tr.Over {
			t.Errorf("q%d: threshold below exact should be over", qi)
		}
	}
}

// TestCoordinatorChaos is the degraded-mode acceptance test: kill one
// HTTP shard mid-stream, check the partial contract on every query type,
// then revive it and check full recovery.
func TestCoordinatorChaos(t *testing.T) {
	pts, _ := dataset(400, 3, 19, "II")
	mono := buildEngine(t, pts, nil, karl.Gaussian(0.5), karl.KDTree)
	shards, man, err := mono.Shard(4, karl.HashPartition)
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	// Short timeout and backoff so the dead-shard path is fast.
	co, switches := httpCluster(t, shards, Config{Timeout: 2 * time.Second, Backoff: time.Millisecond})
	ctx := context.Background()
	q := []float64{0.2, -0.1, 0.5}
	exact, _ := mono.Aggregate(q)

	// Healthy cluster: complete answers.
	res, err := co.Aggregate(ctx, q)
	if err != nil || res.Partial {
		t.Fatalf("healthy aggregate: res=%+v err=%v", res, err)
	}

	// Kill shard 2 mid-stream.
	const victim = 2
	switches[victim].down.Store(true)
	deadW := man.Shards[victim].Weight()
	var deadF float64
	{
		v, err := shards[victim].Aggregate(q)
		if err != nil {
			t.Fatalf("victim aggregate: %v", err)
		}
		deadF = v
	}

	res, err = co.Aggregate(ctx, q)
	if err != nil {
		t.Fatalf("degraded aggregate: %v", err)
	}
	if !res.Partial || len(res.Failed) != 1 {
		t.Fatalf("degraded aggregate should be partial with one failed shard: %+v", res)
	}
	wantCovered := (co.wTotal - deadW) / co.wTotal
	if math.Abs(res.Covered-wantCovered) > 1e-9 {
		t.Fatalf("covered = %v, want %v", res.Covered, wantCovered)
	}
	if want := exact - deadF; math.Abs(res.Value-want) > 1e-9*math.Max(math.Abs(want), 1) {
		t.Fatalf("partial value %v, want remaining mass %v", res.Value, want)
	}

	// Approximate degrades the same way.
	ar, err := co.Approximate(ctx, q, 0.05)
	if err != nil {
		t.Fatalf("degraded approximate: %v", err)
	}
	if !ar.Partial {
		t.Fatalf("degraded approximate should be partial: %+v", ar)
	}
	if want := exact - deadF; math.Abs(ar.Value-want) > 0.05*math.Abs(want)+1e-9 {
		t.Fatalf("partial approximate %v, want ≈ %v", ar.Value, want)
	}

	// Threshold, verdict safe from below: the dead shard's worst case
	// (its full weight, Gaussian kernel values in [0,1]) cannot drag Σ
	// below a τ the live shards already clear. The verdict may certify
	// before the failure is even observed, so Partial is allowed either
	// way here.
	aliveF := exact - deadF
	tr, err := co.Threshold(ctx, q, aliveF/2)
	if err != nil {
		t.Fatalf("safe threshold: %v", err)
	}
	if !tr.Over {
		t.Fatalf("safe threshold should decide over: %+v", tr)
	}

	// Threshold, verdict safe from above: τ exceeds the live mass plus
	// the dead shard's entire worst-case contribution, so Over must be
	// false — and deciding it requires refining the live shards to
	// (near) exact, which always outlives the failure observation:
	// Partial is deterministic here.
	tr, err = co.Threshold(ctx, q, aliveF+1.01*deadW)
	if err != nil {
		t.Fatalf("safe-above threshold: %v", err)
	}
	if tr.Over || !tr.Partial {
		t.Fatalf("safe-above threshold should decide not-over with partial flag: %+v", tr)
	}
	if math.Abs(tr.Covered-wantCovered) > 1e-9 {
		t.Fatalf("threshold covered = %v, want %v", tr.Covered, wantCovered)
	}

	// Threshold, verdict at risk: τ sits inside the dead shard's a-priori
	// interval [aliveF, aliveF + W_dead] — answering would be a guess.
	if _, err := co.Threshold(ctx, q, aliveF+deadW/2); !errors.Is(err, ErrIndeterminate) {
		t.Fatalf("risky threshold: got err=%v, want ErrIndeterminate", err)
	}

	// Revive: full recovery without rebuilding anything.
	switches[victim].down.Store(false)
	res, err = co.Aggregate(ctx, q)
	if err != nil || res.Partial {
		t.Fatalf("revived aggregate: res=%+v err=%v", res, err)
	}
	if math.Abs(res.Value-exact) > 1e-9*math.Max(math.Abs(exact), 1) {
		t.Fatalf("revived value %v, want %v", res.Value, exact)
	}
}

// TestCoordinatorAllShardsDown checks the no-coverage contract: value
// queries error with ErrUnavailable rather than fabricating an answer.
func TestCoordinatorAllShardsDown(t *testing.T) {
	pts, _ := dataset(200, 2, 23, "I")
	mono := buildEngine(t, pts, nil, karl.Gaussian(1), karl.KDTree)
	shards, _, err := mono.Shard(2, karl.HashPartition)
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	co, switches := httpCluster(t, shards, Config{Timeout: time.Second, Backoff: time.Millisecond})
	for _, sw := range switches {
		sw.down.Store(true)
	}
	if _, err := co.Aggregate(context.Background(), []float64{0, 0}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("got err=%v, want ErrUnavailable", err)
	}
}

// TestCoordinatorValidation covers construction and query validation.
func TestCoordinatorValidation(t *testing.T) {
	pts, _ := dataset(100, 2, 29, "I")
	a := buildEngine(t, pts, nil, karl.Gaussian(1), karl.KDTree)
	b := buildEngine(t, pts, nil, karl.Gaussian(2), karl.KDTree)

	_, err := New(context.Background(), []Shard{
		{Client: NewLocalShard("a", a)},
		{Client: NewLocalShard("b", b)},
	}, Config{})
	if err == nil {
		t.Fatal("mismatched kernels should fail construction")
	}

	co, err := New(context.Background(), []Shard{{Client: NewLocalShard("a", a)}}, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := co.Aggregate(context.Background(), []float64{1, 2, 3}); err == nil {
		t.Fatal("wrong-dims query should fail")
	}
	if _, err := co.Approximate(context.Background(), []float64{1, 2}, 0); err == nil {
		t.Fatal("eps=0 should fail")
	}
	if _, err := co.Threshold(context.Background(), []float64{1, 2}, math.NaN()); err == nil {
		t.Fatal("NaN tau should fail")
	}
}

// TestHTTPServerSurface drives the coordinator's own HTTP facade.
func TestHTTPServerSurface(t *testing.T) {
	pts, _ := dataset(300, 3, 31, "II")
	mono := buildEngine(t, pts, nil, karl.Gaussian(0.5), karl.KDTree)
	co := localCoordinator(t, mono, Config{})
	front := httptest.NewServer(NewHTTPServer(co))
	t.Cleanup(front.Close)
	fc := NewHTTPShard(front.URL)
	ctx := context.Background()

	q := []float64{0.1, 0.2, -0.3}
	exact, _ := mono.Aggregate(q)
	got, err := fc.Aggregate(ctx, q)
	if err != nil {
		t.Fatalf("front aggregate: %v", err)
	}
	if math.Abs(got-exact) > 1e-9 {
		t.Fatalf("front aggregate %v, want %v", got, exact)
	}

	info, err := fc.Info(ctx)
	if err != nil {
		t.Fatalf("front info: %v", err)
	}
	if info.Points != mono.Len() || info.Dims != 3 || info.Kernel != "gaussian" {
		t.Fatalf("front info mismatch: %+v", info)
	}
	if err := fc.Healthy(ctx); err != nil {
		t.Fatalf("front readyz: %v", err)
	}

	// Stats surface includes one entry per shard.
	resp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
}

// BenchmarkCoordinatorParallel measures 4-shard scatter-gather
// approximate queries under parallel load — the CI smoke number
// contrasted with BenchmarkSingleNode.
func BenchmarkCoordinatorParallel(b *testing.B) {
	pts, _ := dataset(20000, 5, 41, "II")
	mono := buildEngine(b, pts, nil, karl.Gaussian(0.2), karl.KDTree)
	co := localCoordinator(b, mono, Config{})
	queries, _ := dataset(64, 5, 43, "I")
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := co.Approximate(ctx, queries[i%len(queries)], 0.05); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkSingleNode is the monolithic baseline for
// BenchmarkCoordinatorParallel.
func BenchmarkSingleNode(b *testing.B) {
	pts, _ := dataset(20000, 5, 41, "II")
	mono := buildEngine(b, pts, nil, karl.Gaussian(0.2), karl.KDTree)
	queries, _ := dataset(64, 5, 43, "I")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		eng := mono.Clone()
		i := 0
		for pb.Next() {
			if _, err := eng.Approximate(queries[i%len(queries)], 0.05); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
