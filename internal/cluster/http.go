package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"

	"karl"
	"karl/internal/server"
)

// QueryCoordinator is the read surface the HTTP facade serves. Both the
// fixed-membership Coordinator and the WritableCoordinator implement it,
// so one facade covers static and writable clusters.
type QueryCoordinator interface {
	Dims() int
	Points() int
	KernelName() string
	Gamma() float64
	NumShards() int
	Stats() []ShardStats
	Health(ctx context.Context) []ShardHealth
	Aggregate(ctx context.Context, q []float64) (Result, error)
	Threshold(ctx context.Context, q []float64, tau float64) (ThresholdResult, error)
	Approximate(ctx context.Context, q []float64, eps float64) (Result, error)
}

// HTTPServer exposes a coordinator over the same /v1/* JSON surface as a
// single-node karl-serve, so clients scale from one box to a cluster
// without changing their request shapes. Degraded-mode answers carry the
// partial contract ("partial": true plus the covered-weight fraction); an
// indeterminate threshold verdict is a 503, not a guess.
type HTTPServer struct {
	co      QueryCoordinator
	wco     *WritableCoordinator // non-nil for writable clusters
	mux     *http.ServeMux
	maxBody int64

	requests atomic.Int64
	errors   atomic.Int64
	partials atomic.Int64
}

const defaultMaxBody = 32 << 20

// NewHTTPServer wraps a coordinator in an HTTP handler.
func NewHTTPServer(co QueryCoordinator) *HTTPServer {
	s := &HTTPServer{co: co, mux: http.NewServeMux(), maxBody: defaultMaxBody}
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /v1/aggregate", s.handleAggregate)
	s.mux.HandleFunc("POST /v1/threshold", s.handleThreshold)
	s.mux.HandleFunc("POST /v1/approximate", s.handleApproximate)
	return s
}

// NewWritableHTTPServer wraps a writable coordinator: the read surface of
// NewHTTPServer plus POST /v1/insert and DELETE /v1/point, both routed
// through the cluster manifest to the owning member.
func NewWritableHTTPServer(co *WritableCoordinator) *HTTPServer {
	s := NewHTTPServer(co)
	s.wco = co
	s.mux.HandleFunc("POST /v1/insert", s.handleInsert)
	s.mux.HandleFunc("DELETE /v1/point", s.handleDelete)
	return s
}

// ServeHTTP implements http.Handler.
func (s *HTTPServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ClusterInfoResponse is the coordinator's GET /v1/info body. Writable,
// Epoch and Splits are set only for writable clusters.
type ClusterInfoResponse struct {
	Points   int     `json:"points"`
	Dims     int     `json:"dims"`
	Kernel   string  `json:"kernel"`
	Gamma    float64 `json:"gamma"`
	Shards   int     `json:"shards"`
	Writable bool    `json:"writable,omitempty"`
	Epoch    uint64  `json:"epoch,omitempty"`
	Splits   int64   `json:"splits,omitempty"`
}

// ClusterStatsResponse is the coordinator's GET /v1/stats body:
// coordinator-level request counters plus per-shard latency/error/
// retry/hedge counters. Epoch, Splits and Rescatters are reported only
// for writable clusters.
type ClusterStatsResponse struct {
	Requests   int64        `json:"requests"`
	Errors     int64        `json:"errors"`
	Partials   int64        `json:"partials"`
	Shards     []ShardStats `json:"shards"`
	Epoch      uint64       `json:"epoch,omitempty"`
	Splits     int64        `json:"splits,omitempty"`
	Rescatters int64        `json:"rescatters,omitempty"`
	// Cluster is the writable coordinator's membership/replication block:
	// per-member role, quarantine state and per-follower replication lag,
	// plus promotion and failover counters.
	Cluster *ClusterStatus `json:"cluster,omitempty"`
}

// ClusterInsertResponse reports a routed insert: cluster-global point ids
// in input order and the manifest epoch the insert landed under.
type ClusterInsertResponse struct {
	Inserted int      `json:"inserted"`
	IDs      []uint64 `json:"ids"`
	Epoch    uint64   `json:"epoch"`
}

// ClusterInsertErrorResponse reports an insert that failed mid-batch: the
// cross-member request is not transactional, so some points may already
// have landed. IDs is index-aligned with the request points; a non-zero
// entry is the cluster-global id of a point that DID land (0 is never a
// valid id), so the caller can delete the orphans or skip them on retry
// instead of duplicating them.
type ClusterInsertErrorResponse struct {
	Error    string   `json:"error"`
	Inserted int      `json:"inserted"`
	IDs      []uint64 `json:"ids"`
}

// ClusterDeleteResponse reports a routed delete.
type ClusterDeleteResponse struct {
	Deleted int    `json:"deleted"`
	Epoch   uint64 `json:"epoch"`
}

// ClusterValueResponse is a value answer plus the degradation contract.
type ClusterValueResponse struct {
	Value   float64  `json:"value"`
	LB      float64  `json:"lb"`
	UB      float64  `json:"ub"`
	Partial bool     `json:"partial,omitempty"`
	Covered float64  `json:"covered"`
	Failed  []string `json:"failed,omitempty"`
}

// ClusterBoolResponse is a threshold verdict plus the degradation
// contract.
type ClusterBoolResponse struct {
	Over    bool     `json:"over"`
	Partial bool     `json:"partial,omitempty"`
	Covered float64  `json:"covered"`
	Failed  []string `json:"failed,omitempty"`
}

// ClusterReadyResponse is the coordinator's GET /v1/readyz body.
type ClusterReadyResponse struct {
	Ready  bool          `json:"ready"`
	Shards []ShardHealth `json:"shards"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *HTTPServer) fail(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	writeJSON(w, status, errorResponse{err.Error()})
}

// decode parses a JSON body under the size cap.
func (s *HTTPServer) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("request body exceeds %d bytes", s.maxBody)
		}
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func (s *HTTPServer) handleInfo(w http.ResponseWriter, _ *http.Request) {
	s.requests.Add(1)
	resp := ClusterInfoResponse{
		Points: s.co.Points(),
		Dims:   s.co.Dims(),
		Kernel: s.co.KernelName(),
		Gamma:  s.co.Gamma(),
		Shards: s.co.NumShards(),
	}
	if s.wco != nil {
		resp.Writable = true
		resp.Epoch = s.wco.Epoch()
		resp.Splits = s.wco.Splits()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *HTTPServer) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := ClusterStatsResponse{
		Requests: s.requests.Load(),
		Errors:   s.errors.Load(),
		Partials: s.partials.Load(),
		Shards:   s.co.Stats(),
	}
	if s.wco != nil {
		resp.Epoch = s.wco.Epoch()
		resp.Splits = s.wco.Splits()
		resp.Rescatters = s.wco.Rescatters()
		cs := s.wco.ClusterStatus(r.Context())
		resp.Cluster = &cs
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleInsert routes points through the manifest to their owning
// members. The request body is the single-node InsertRequest (one point
// or bulk); the returned ids are cluster-global.
func (s *HTTPServer) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req server.InsertRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var points [][]float64
	var weights []float64
	switch {
	case req.P != nil && req.Points != nil:
		s.fail(w, http.StatusBadRequest, errors.New(`"p" and "points" are mutually exclusive`))
		return
	case req.P != nil:
		wt := 1.0
		if req.W != nil {
			wt = *req.W
		}
		points, weights = [][]float64{req.P}, []float64{wt}
	case req.Points != nil:
		if req.Weights != nil && len(req.Weights) != len(req.Points) {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("%d weights for %d points", len(req.Weights), len(req.Points)))
			return
		}
		points, weights = req.Points, req.Weights
	default:
		s.fail(w, http.StatusBadRequest, errors.New(`provide "p" (single point) or "points" (bulk)`))
		return
	}
	ids, err := s.wco.Insert(r.Context(), points, weights)
	if err != nil {
		if len(ids) > 0 {
			// Mid-batch failure with points already landed: report their
			// ids so the caller can roll back or dedup a retry.
			landed := 0
			for _, id := range ids {
				if id != 0 {
					landed++
				}
			}
			s.errors.Add(1)
			writeJSON(w, s.queryStatus(err), ClusterInsertErrorResponse{
				Error: err.Error(), Inserted: landed, IDs: ids,
			})
			return
		}
		s.fail(w, s.queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ClusterInsertResponse{
		Inserted: len(ids),
		IDs:      ids,
		Epoch:    s.wco.Epoch(),
	})
}

// handleDelete routes a delete by cluster-global id, chasing split
// lineage when the owning member no longer holds the point.
func (s *HTTPServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req server.DeleteRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var ids []uint64
	switch {
	case req.ID != 0 && req.IDs != nil:
		s.fail(w, http.StatusBadRequest, errors.New(`"id" and "ids" are mutually exclusive`))
		return
	case req.ID != 0:
		ids = []uint64{req.ID}
	case len(req.IDs) != 0:
		ids = req.IDs
	default:
		s.fail(w, http.StatusBadRequest, errors.New(`provide "id" (single) or "ids" (bulk)`))
		return
	}
	for i, id := range ids {
		if err := s.wco.Delete(r.Context(), id); err != nil {
			status := s.queryStatus(err)
			if errors.Is(err, karl.ErrPointNotFound) {
				status = http.StatusNotFound
			}
			s.errors.Add(1)
			writeJSON(w, status, errorResponse{
				fmt.Sprintf("id %d: %v (%d of %d deleted)", id, err, i, len(ids)),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, ClusterDeleteResponse{Deleted: len(ids), Epoch: s.wco.Epoch()})
}

func (s *HTTPServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, server.HealthResponse{OK: true})
}

// handleReadyz probes every shard; the coordinator is ready when all
// shards (or a replica of each) answer their readiness probe. A degraded
// cluster still serves — readiness signals full coverage to load
// balancers.
func (s *HTTPServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	shards := s.co.Health(r.Context())
	ready := true
	for _, sh := range shards {
		ready = ready && sh.OK
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, ClusterReadyResponse{Ready: ready, Shards: shards})
}

func (s *HTTPServer) handleAggregate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req server.QueryRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.co.Aggregate(r.Context(), req.Q)
	if err != nil {
		s.fail(w, s.queryStatus(err), err)
		return
	}
	s.respond(w, res)
}

func (s *HTTPServer) handleThreshold(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req server.QueryRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.co.Threshold(r.Context(), req.Q, req.Tau)
	if err != nil {
		s.fail(w, s.queryStatus(err), err)
		return
	}
	if res.Partial {
		s.partials.Add(1)
	}
	writeJSON(w, http.StatusOK, ClusterBoolResponse{
		Over:    res.Over,
		Partial: res.Partial,
		Covered: res.Covered,
		Failed:  res.Failed,
	})
}

func (s *HTTPServer) handleApproximate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req server.QueryRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := validateBudget(req.Eps, req.EpsNorm); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// A normalized budget maps conservatively onto the relative contract,
	// mirroring the single-node server: F_P ≤ W makes relative ε at
	// eps_norm at least as tight as the normalized bound.
	budget := req.Eps
	if req.EpsNorm != 0 {
		budget = req.EpsNorm
	}
	res, err := s.co.Approximate(r.Context(), req.Q, budget)
	if err != nil {
		s.fail(w, s.queryStatus(err), err)
		return
	}
	s.respond(w, res)
}

func (s *HTTPServer) respond(w http.ResponseWriter, res Result) {
	if res.Partial {
		s.partials.Add(1)
	}
	writeJSON(w, http.StatusOK, ClusterValueResponse{
		Value:   res.Value,
		LB:      res.LB,
		UB:      res.UB,
		Partial: res.Partial,
		Covered: res.Covered,
		Failed:  res.Failed,
	})
}

// queryStatus maps coordinator errors to HTTP statuses: indeterminate
// verdicts, total shard loss, and queries that kept straddling membership
// changes are upstream availability problems (503), everything else is a
// bad request.
func (s *HTTPServer) queryStatus(err error) int {
	if errors.Is(err, ErrIndeterminate) || errors.Is(err, ErrUnavailable) || errors.Is(err, ErrEpochChanged) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// validateBudget mirrors the single-node server's approximate-budget
// rules: exactly one of the two error models, in range.
func validateBudget(eps, epsNorm float64) error {
	switch {
	case math.IsNaN(eps) || math.IsInf(eps, 0):
		return fmt.Errorf("eps must be finite, got %v", eps)
	case math.IsNaN(epsNorm) || math.IsInf(epsNorm, 0):
		return fmt.Errorf("eps_norm must be finite, got %v", epsNorm)
	case eps != 0 && epsNorm != 0:
		return errors.New("eps and eps_norm are mutually exclusive: pick the relative or the normalized error model")
	case epsNorm != 0:
		if epsNorm <= 0 || epsNorm >= 1 {
			return fmt.Errorf("eps_norm must be in (0,1), got %v", epsNorm)
		}
	case eps <= 0:
		return errors.New("eps must be positive (or set eps_norm for the normalized error model)")
	}
	return nil
}
