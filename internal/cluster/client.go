// Package cluster is the horizontal-scaling layer: a coordinator that
// answers kernel aggregation queries by scatter-gather over N shard
// engines, each holding one slice of a partitioned dataset
// (internal/shard, cmd/karl-shard).
//
// The layer leans on the paper's structure instead of treating shards as
// black boxes. Kernel aggregation is additively decomposable,
// F_P(q) = Σ_S F_S(q), and KARL's refinement produces certified per-shard
// intervals [lb_S, ub_S] ∋ F_S(q) — so per-shard intervals SUM to a
// certified global interval, exactly as core.Forest composes segment
// bounds inside one process. The coordinator therefore runs the paper's
// termination tests on Σ lb_S and Σ ub_S: a threshold query stops the
// moment Σ lb > τ or Σ ub ≤ τ (cancelling outstanding shard work), and an
// approximate query refines adaptively, allocating the global ε-budget
// across shards proportional to their weight mass W_S and leaving already
// tight shards alone.
//
// Two ShardClient backends implement the transport: LocalShard wraps an
// in-process *karl.Engine behind a clone pool (core-parallel single-box
// serving) and HTTPShard speaks JSON to a remote karl-serve instance over
// the /v1/* endpoints (POST /v1/bounds is the bound-exchange unit).
// Robustness is first-class: per-shard timeouts, one retry with backoff,
// hedged requests to a replica after a latency percentile, and a degraded
// mode that serves explicit partial results when a shard is down.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"karl"
	"karl/internal/server"
	"karl/internal/shard"
)

// ShardInfo describes one shard's slice of the dataset: cardinality,
// dimensionality, kernel identity, and the per-sign weight masses the
// coordinator's ε-budget allocation and degraded-mode accounting need.
type ShardInfo struct {
	Points int
	Dims   int
	Kernel string
	Gamma  float64
	WPos   float64
	WNeg   float64
}

// Weight returns the shard's total weight mass W_S = W⁺ + W⁻.
func (i ShardInfo) Weight() float64 { return i.WPos + i.WNeg }

// Bounds is one bound-exchange answer: the shard's current estimate of
// F_S(q) together with the certified interval refinement terminated at.
type Bounds struct {
	Value float64
	LB    float64
	UB    float64
}

// ShardClient is the transport interface the coordinator fans out over.
// Implementations must be safe for concurrent use — the coordinator issues
// hedged and parallel calls against one client.
type ShardClient interface {
	// Name identifies the shard in stats and error messages.
	Name() string
	// Info describes the shard's dataset.
	Info(ctx context.Context) (ShardInfo, error)
	// Aggregate computes the shard's exact contribution F_S(q).
	Aggregate(ctx context.Context, q []float64) (float64, error)
	// Bounds refines F_S(q) to the given relative budget and returns the
	// value with its certified interval; eps <= 0 requests the exact value
	// (lb = ub = value).
	Bounds(ctx context.Context, q []float64, eps float64) (Bounds, error)
	// Healthy probes shard readiness (GET /v1/readyz for remote shards).
	Healthy(ctx context.Context) error
}

// SplitResult is one completed shard split as seen by the coordinator:
// the rule actually applied (with any shard-chosen kd plane filled in),
// the moved half as an engine persistence stream ready to install
// elsewhere, and the id fence at the split instant — the new member's
// BaseSeq, below which ids may refer to inherited points.
type SplitResult struct {
	Rule   shard.SplitRule
	Moved  []byte
	Fence  uint64
	Points int
	// WPos/WNeg are the moved half's weight masses — the new member's
	// advisory mass for coverage accounting when it cannot be spawned.
	WPos, WNeg float64
}

// MutableShardClient extends ShardClient with the write path of a
// writable shard: routed inserts, deletes by engine-local id, and the
// shard side of a split (segment shipping).
type MutableShardClient interface {
	ShardClient
	// Insert adds points (nil weights = unit) and returns their
	// engine-local ids, in input order.
	Insert(ctx context.Context, points [][]float64, weights []float64) ([]uint64, error)
	// Delete removes the point with the given engine-local id. A missing
	// id reports karl.ErrPointNotFound (wrapped), which the coordinator's
	// lineage fallback relies on.
	Delete(ctx context.Context, id uint64) error
	// SplitOut extracts the half matching the rule into a serialized
	// engine. auto lets a kd shard choose its own balanced plane; the
	// returned Rule is always the one actually applied.
	SplitOut(ctx context.Context, rule shard.SplitRule, auto bool) (SplitResult, error)
}

// LocalShard serves one in-process engine as a shard: the core-parallel
// single-box backend. Engine clones are pooled so concurrent (including
// hedged) calls each refine on private scratch over the shared dataset.
// Wrapping a mutable engine (NewLocalMutableShard) adds the write path;
// Info is computed live either way, so it tracks inserts and splits.
type LocalShard struct {
	name string
	eng  karl.QueryEngine
	mut  karl.MutableEngine // nil for read-only shards
	pool sync.Pool
}

// NewLocalShard wraps a query engine as a read-only shard client.
func NewLocalShard(name string, eng karl.QueryEngine) *LocalShard {
	s := &LocalShard{name: name, eng: eng}
	s.pool.New = func() any { return eng.CloneQuery() }
	return s
}

// NewLocalMutableShard wraps a mutable engine as a writable shard client.
func NewLocalMutableShard(name string, eng karl.MutableEngine) *LocalShard {
	s := NewLocalShard(name, eng)
	s.mut = eng
	return s
}

// Name implements ShardClient.
func (s *LocalShard) Name() string { return s.name }

// Info implements ShardClient. It reads the live engine, so a mutable
// shard's cardinality and weight masses track its writes.
func (s *LocalShard) Info(ctx context.Context) (ShardInfo, error) {
	if err := ctx.Err(); err != nil {
		return ShardInfo{}, err
	}
	wpos, wneg := s.eng.WeightMass()
	k := s.eng.Kernel()
	return ShardInfo{
		Points: s.eng.Len(),
		Dims:   s.eng.Dims(),
		Kernel: k.Kind.String(),
		Gamma:  k.Gamma,
		WPos:   wpos,
		WNeg:   wneg,
	}, nil
}

// Healthy implements ShardClient; an in-process engine is always ready.
func (s *LocalShard) Healthy(ctx context.Context) error { return ctx.Err() }

// Aggregate implements ShardClient.
func (s *LocalShard) Aggregate(ctx context.Context, q []float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	eng := s.pool.Get().(karl.QueryEngine)
	defer s.pool.Put(eng)
	v, _, err := eng.AggregateStats(q)
	return v, err
}

// Bounds implements ShardClient. In-process refinement is not
// interruptible mid-query; the context is honored at call boundaries,
// which is enough for the sub-millisecond single-shard latencies this
// backend exists for.
func (s *LocalShard) Bounds(ctx context.Context, q []float64, eps float64) (Bounds, error) {
	if err := ctx.Err(); err != nil {
		return Bounds{}, err
	}
	eng := s.pool.Get().(karl.QueryEngine)
	defer s.pool.Put(eng)
	if eps > 0 {
		v, st, err := eng.ApproximateStats(q, eps)
		if err != nil {
			return Bounds{}, err
		}
		return Bounds{Value: v, LB: st.LB, UB: st.UB}, nil
	}
	v, _, err := eng.AggregateStats(q)
	if err != nil {
		return Bounds{}, err
	}
	return Bounds{Value: v, LB: v, UB: v}, nil
}

// errReadOnly reports a write against a shard without a mutable engine.
func (s *LocalShard) errReadOnly() error {
	return fmt.Errorf("cluster: shard %s is read-only", s.name)
}

// Insert implements MutableShardClient.
func (s *LocalShard) Insert(ctx context.Context, points [][]float64, weights []float64) ([]uint64, error) {
	if s.mut == nil {
		return nil, s.errReadOnly()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.mut.InsertBulk(points, weights)
}

// Delete implements MutableShardClient.
func (s *LocalShard) Delete(ctx context.Context, id uint64) error {
	if s.mut == nil {
		return s.errReadOnly()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.mut.Delete(id)
}

// SplitOut implements MutableShardClient: the in-process form of segment
// shipping. The moved half still travels through the engine persistence
// format, so local and remote splits exercise the same wire unit.
func (s *LocalShard) SplitOut(ctx context.Context, rule shard.SplitRule, auto bool) (SplitResult, error) {
	if s.mut == nil {
		return SplitResult{}, s.errReadOnly()
	}
	if err := ctx.Err(); err != nil {
		return SplitResult{}, err
	}
	if auto && rule.Kind == shard.KDSplit {
		dim, cut, err := s.mut.SplitPlane()
		if err != nil {
			return SplitResult{}, fmt.Errorf("cluster: shard %s: %w: %w", s.name, errRejected, err)
		}
		rule.Dim, rule.Cut = dim, cut
	}
	pred, err := rule.Pred()
	if err != nil {
		return SplitResult{}, fmt.Errorf("%w: %w", errRejected, err)
	}
	moved, err := s.mut.Split(pred)
	if err != nil {
		// Engine splits are atomic: an error means nothing moved.
		return SplitResult{}, fmt.Errorf("cluster: shard %s: %w: %w", s.name, errRejected, err)
	}
	var buf bytes.Buffer
	if _, err := moved.WriteTo(&buf); err != nil {
		return SplitResult{}, fmt.Errorf("cluster: shard %s: serializing moved half: %w", s.name, err)
	}
	wpos, wneg := moved.WeightMass()
	return SplitResult{
		Rule: rule, Moved: buf.Bytes(), Fence: moved.NextSeq(),
		Points: moved.Len(), WPos: wpos, WNeg: wneg,
	}, nil
}

// HTTPShard speaks to a remote karl-serve instance over its JSON /v1/*
// endpoints, reusing the server's request types on the wire.
type HTTPShard struct {
	base string
	hc   *http.Client
}

// NewHTTPShard builds a client for a karl-serve base URL (e.g.
// "http://host:8080"). The default transport keeps connections alive
// across the coordinator's scatter-gather rounds.
func NewHTTPShard(baseURL string) *HTTPShard {
	return NewHTTPShardClient(baseURL, &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	})
}

// NewHTTPShardClient builds a client with a caller-supplied http.Client
// (custom transports, test instrumentation).
func NewHTTPShardClient(baseURL string, hc *http.Client) *HTTPShard {
	return &HTTPShard{base: baseURL, hc: hc}
}

// Name implements ShardClient: the base URL identifies the shard.
func (s *HTTPShard) Name() string { return s.base }

// Info implements ShardClient via GET /v1/info.
func (s *HTTPShard) Info(ctx context.Context) (ShardInfo, error) {
	var resp server.InfoResponse
	if err := s.get(ctx, "/v1/info", &resp); err != nil {
		return ShardInfo{}, err
	}
	return ShardInfo{
		Points: resp.Points,
		Dims:   resp.Dims,
		Kernel: resp.Kernel,
		Gamma:  resp.Gamma,
		WPos:   resp.WeightPos,
		WNeg:   resp.WeightNeg,
	}, nil
}

// Healthy implements ShardClient via GET /v1/readyz.
func (s *HTTPShard) Healthy(ctx context.Context) error {
	var resp server.ReadyResponse
	if err := s.get(ctx, "/v1/readyz", &resp); err != nil {
		return err
	}
	if !resp.Ready {
		return fmt.Errorf("cluster: shard %s not ready", s.base)
	}
	return nil
}

// Aggregate implements ShardClient via POST /v1/aggregate.
func (s *HTTPShard) Aggregate(ctx context.Context, q []float64) (float64, error) {
	var resp server.ValueResponse
	if err := s.post(ctx, "/v1/aggregate", server.QueryRequest{Q: q}, &resp); err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// Bounds implements ShardClient via POST /v1/bounds; eps <= 0 sends no
// budget, which the server answers exactly.
func (s *HTTPShard) Bounds(ctx context.Context, q []float64, eps float64) (Bounds, error) {
	req := server.QueryRequest{Q: q}
	if eps > 0 {
		req.Eps = eps
	}
	var resp server.BoundsResponse
	if err := s.post(ctx, "/v1/bounds", req, &resp); err != nil {
		return Bounds{}, err
	}
	return Bounds{Value: resp.Value, LB: resp.LB, UB: resp.UB}, nil
}

// Insert implements MutableShardClient via POST /v1/insert.
func (s *HTTPShard) Insert(ctx context.Context, points [][]float64, weights []float64) ([]uint64, error) {
	var resp server.InsertResponse
	if err := s.post(ctx, "/v1/insert", server.InsertRequest{Points: points, Weights: weights}, &resp); err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Delete implements MutableShardClient via DELETE /v1/point. A 404 maps
// to karl.ErrPointNotFound so the coordinator's lineage fallback can
// chase split-moved points.
func (s *HTTPShard) Delete(ctx context.Context, id uint64) error {
	payload, err := json.Marshal(server.DeleteRequest{ID: id})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, s.base+"/v1/point", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp server.DeleteResponse
	return s.do(req, &resp)
}

// SplitOut implements MutableShardClient via POST /v1/split. auto omits
// the kd plane so the shard chooses its own (the applied rule comes back
// in the response).
func (s *HTTPShard) SplitOut(ctx context.Context, rule shard.SplitRule, auto bool) (SplitResult, error) {
	req := server.SplitRequest{Kind: rule.Kind.String()}
	switch rule.Kind {
	case shard.Hash:
		req.NumSlots, req.Slots = rule.NumSlots, rule.Slots
	case shard.KDSplit:
		if !auto {
			dim, cut := rule.Dim, rule.Cut
			req.Dim, req.Cut = &dim, &cut
		}
	}
	var resp server.SplitResponse
	if err := s.post(ctx, "/v1/split", req, &resp); err != nil {
		return SplitResult{}, err
	}
	kind, err := shard.ParseKind(resp.Kind)
	if err != nil {
		return SplitResult{}, fmt.Errorf("cluster: shard %s: %w", s.base, err)
	}
	return SplitResult{
		Rule: shard.SplitRule{
			Kind: kind, Dim: resp.Dim, Cut: resp.Cut,
			NumSlots: resp.NumSlots, Slots: resp.Slots,
		},
		Moved:  resp.Moved,
		Fence:  resp.NextSeq,
		Points: resp.MovedPoints,
		WPos:   resp.MovedWPos,
		WNeg:   resp.MovedWNeg,
	}, nil
}

func (s *HTTPShard) get(ctx context.Context, path string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+path, nil)
	if err != nil {
		return err
	}
	return s.do(req, dst)
}

func (s *HTTPShard) post(ctx context.Context, path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return s.do(req, dst)
}

// do executes a request and decodes the JSON response, surfacing the
// server's error envelope on non-2xx statuses.
func (s *HTTPShard) do(req *http.Request, dst any) error {
	resp, err := s.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: shard %s: %w", s.base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("cluster: shard %s: read response: %w", s.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error string `json:"error"`
		}
		structured := json.Unmarshal(body, &envelope) == nil && envelope.Error != ""
		msg := fmt.Sprintf("HTTP %d", resp.StatusCode)
		if structured {
			msg = fmt.Sprintf("%s (HTTP %d)", envelope.Error, resp.StatusCode)
		}
		// Only a status carrying the server's structured error envelope is
		// a verdict FROM the karl-serve handler. A bare 404/405 comes from
		// the route mux (a shard not running -mutable, a wrong base URL) or
		// an intermediary — mapping it to ErrPointNotFound would let the
		// coordinator's lineage chase swallow a misconfigured shard as
		// "point not found", and treating it as a clean pre-side-effect
		// refusal would be a guess about a server we evidently don't know.
		if structured {
			if resp.StatusCode == http.StatusNotFound {
				// The server 404s unknown point ids; surface the sentinel so
				// delete routing can distinguish "not here" from "shard broken".
				return fmt.Errorf("cluster: shard %s: %s: %w: %w", s.base, msg, errRejected, karl.ErrPointNotFound)
			}
			if resp.StatusCode >= 400 && resp.StatusCode < 500 {
				// A 4xx means the server rejected the request before any side
				// effect — the split orchestrator relies on this to tell a clean
				// refusal from an ambiguous transport failure.
				return fmt.Errorf("cluster: shard %s: %s: %w", s.base, msg, errRejected)
			}
		}
		return fmt.Errorf("cluster: shard %s: %s", s.base, msg)
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return fmt.Errorf("cluster: shard %s: decode response: %w", s.base, err)
	}
	return nil
}
