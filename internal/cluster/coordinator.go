package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrIndeterminate is returned by Threshold in degraded mode when the
// unreachable shards' worst-case weight mass could flip the verdict: the
// coordinator refuses to guess. Aggregate and Approximate degrade to
// explicit partial results instead; a threshold answer is a boolean and
// has no honest partial form.
var ErrIndeterminate = errors.New("cluster: threshold verdict indeterminate: unreachable shards could flip it")

// ErrUnavailable is returned when no shard at all could answer a query —
// the one degradation with no honest partial form for value queries.
var ErrUnavailable = errors.New("cluster: no shards reachable")

// Config tunes the coordinator's robustness and refinement behavior. The
// zero value picks production defaults.
type Config struct {
	// Timeout bounds each shard attempt (default 2s).
	Timeout time.Duration
	// Retries is the number of retry attempts after a failed call
	// (default 1; negative disables retries).
	Retries int
	// Backoff is the pause before a retry (default 50ms).
	Backoff time.Duration
	// HedgeQuantile arms a hedged request to a replica once the primary
	// has been in flight longer than this latency quantile of recent
	// successful calls (default 0.9). Hedging needs replicas and a warm
	// latency window; otherwise calls are unhedged.
	HedgeQuantile float64
	// HedgeMin floors the hedge delay so cold windows with microsecond
	// samples don't hedge every call (default 1ms).
	HedgeMin time.Duration
	// MaxRounds caps adaptive bound-exchange rounds before the
	// coordinator forces an exact round (default 6).
	MaxRounds int
	// InitialEps is the round-0 relative budget for threshold queries
	// (default 0.5): cheap first bounds, refined only where τ demands it.
	InitialEps float64
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	switch {
	case c.Retries == 0:
		c.Retries = 1
	case c.Retries < 0:
		c.Retries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.9
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 6
	}
	if c.InitialEps <= 0 {
		c.InitialEps = 0.5
	}
	return c
}

// Shard names one shard's primary client plus optional replicas serving
// the same slice of the dataset (hedge and retry targets).
type Shard struct {
	Client   ShardClient
	Replicas []ShardClient
}

// shardState is the coordinator's per-shard bookkeeping: identity, the
// latency window driving hedge delays, and the robustness counters
// surfaced in /v1/stats.
type shardState struct {
	client   ShardClient
	replicas []ShardClient
	info     ShardInfo

	lat       latencyWindow
	requests  atomic.Int64
	errors    atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
}

// Coordinator answers Aggregate/Threshold/Approximate queries by
// scatter-gather over shard engines, composing per-shard certified bounds
// into global ones (see the package comment for the protocol).
type Coordinator struct {
	cfg    Config
	shards []*shardState

	dims   int
	kernel string
	gamma  float64
	points int
	wTotal float64
	// klo/khi is the kernel's per-unit-weight value range, the basis for
	// a-priori shard bounds when a shard has not answered yet (±Inf for
	// unbounded kernels).
	klo, khi float64
}

// New builds a coordinator over the given shards, fetching and
// cross-validating every shard's Info (dims, kernel family, gamma must
// agree — they describe one partitioned dataset). All shards must be
// reachable at construction: without a shard's weight masses the
// coordinator cannot budget refinement or account degraded coverage.
func New(ctx context.Context, shards []Shard, cfg Config) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: need at least one shard")
	}
	cfg = cfg.withDefaults()
	co := &Coordinator{cfg: cfg, shards: make([]*shardState, len(shards))}
	for i, sp := range shards {
		if sp.Client == nil {
			return nil, fmt.Errorf("cluster: shard %d has no client", i)
		}
		co.shards[i] = &shardState{client: sp.Client, replicas: sp.Replicas}
	}

	var wg sync.WaitGroup
	errs := make([]error, len(shards))
	for i, s := range co.shards {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			info, err := call(ctx, co, s, func(ctx context.Context, c ShardClient) (ShardInfo, error) {
				return c.Info(ctx)
			})
			if err != nil {
				errs[i] = err
				return
			}
			s.info = info
		}(i, s)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, fmt.Errorf("cluster: shard discovery failed: %w", err)
	}

	first := co.shards[0].info
	co.dims, co.kernel, co.gamma = first.Dims, first.Kernel, first.Gamma
	co.klo, co.khi = kernelRange(first.Kernel)
	for _, s := range co.shards {
		if s.info.Dims != co.dims || s.info.Kernel != co.kernel || s.info.Gamma != co.gamma {
			return nil, fmt.Errorf(
				"cluster: shard %s serves (%s γ=%v, %dd), want (%s γ=%v, %dd): shards must hold one partitioned dataset",
				s.client.Name(), s.info.Kernel, s.info.Gamma, s.info.Dims, co.kernel, co.gamma, co.dims)
		}
		co.points += s.info.Points
		co.wTotal += s.info.Weight()
	}
	return co, nil
}

// Dims returns the query dimensionality.
func (co *Coordinator) Dims() int { return co.dims }

// Points returns the total dataset cardinality across shards.
func (co *Coordinator) Points() int { return co.points }

// KernelName returns the kernel family the cluster serves.
func (co *Coordinator) KernelName() string { return co.kernel }

// Gamma returns the kernel bandwidth parameter.
func (co *Coordinator) Gamma() float64 { return co.gamma }

// NumShards returns the shard count.
func (co *Coordinator) NumShards() int { return len(co.shards) }

// kernelRange returns the kernel's value range per unit weight; unbounded
// kernels (polynomial) get ±Inf, which disables a-priori bounds.
func kernelRange(kind string) (lo, hi float64) {
	switch kind {
	case "gaussian", "epanechnikov", "quartic":
		return 0, 1
	case "sigmoid":
		return -1, 1
	default:
		return math.Inf(-1), math.Inf(1)
	}
}

// apriori returns bounds on F_S(q) that hold before the shard has been
// asked anything: each unit of positive mass contributes a kernel value in
// [klo, khi], each unit of negative mass the reflection.
func (co *Coordinator) apriori(info ShardInfo) (lb, ub float64) {
	if info.WPos == 0 && info.WNeg == 0 {
		return 0, 0
	}
	if math.IsInf(co.khi, 1) {
		return math.Inf(-1), math.Inf(1)
	}
	return info.WPos*co.klo - info.WNeg*co.khi, info.WPos*co.khi - info.WNeg*co.klo
}

// Result is a scatter-gather answer plus the degradation contract: when
// shards were unreachable the value covers only the reachable ones,
// Partial is set, and Covered reports the fraction of total weight mass
// behind the answer.
type Result struct {
	Value float64
	// LB and UB are the certified interval the cluster terminated at
	// (over covered shards; LB == UB == Value for exact aggregates).
	LB, UB float64
	// Partial is true when one or more shards did not contribute.
	Partial bool
	// Covered is the fraction of total weight mass behind Value (1 when
	// complete).
	Covered float64
	// Failed names the unreachable shards.
	Failed []string
}

// ThresholdResult is a scatter-gather threshold verdict. In degraded mode
// a verdict is only returned when the dead shards' worst-case mass cannot
// flip it — otherwise Threshold errors with ErrIndeterminate.
type ThresholdResult struct {
	Over    bool
	Partial bool
	Covered float64
	Failed  []string
}

func (co *Coordinator) checkQuery(q []float64) error {
	if len(q) != co.dims {
		return fmt.Errorf("cluster: query has %d dims, want %d", len(q), co.dims)
	}
	for i, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("cluster: q[%d] is not finite", i)
		}
	}
	return nil
}

// Aggregate computes F_P(q) = Σ_S F_S(q) exactly over the reachable
// shards, one scatter-gather with per-shard timeout/retry/hedging.
func (co *Coordinator) Aggregate(ctx context.Context, q []float64) (Result, error) {
	if err := co.checkQuery(q); err != nil {
		return Result{}, err
	}
	n := len(co.shards)
	values := make([]float64, n)
	failures := make([]error, n)
	var wg sync.WaitGroup
	for i, s := range co.shards {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			v, err := call(ctx, co, s, func(ctx context.Context, c ShardClient) (float64, error) {
				return c.Aggregate(ctx, q)
			})
			values[i], failures[i] = v, err
		}(i, s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	var sum, aliveW float64
	var failed []string
	var firstErr error
	for i, s := range co.shards {
		if failures[i] != nil {
			failed = append(failed, s.client.Name())
			if firstErr == nil {
				firstErr = failures[i]
			}
			continue
		}
		sum += values[i]
		aliveW += s.info.Weight()
	}
	if len(failed) == n {
		return Result{}, fmt.Errorf("%w: all %d shards failed (first error: %v)", ErrUnavailable, n, firstErr)
	}
	return Result{
		Value:   sum,
		LB:      sum,
		UB:      sum,
		Partial: len(failed) > 0,
		Covered: co.coveredFraction(aliveW, len(failed)),
		Failed:  failed,
	}, nil
}

// coveredFraction maps reachable weight mass to the Covered contract
// field, degrading to a shard-count fraction for weightless datasets.
func (co *Coordinator) coveredFraction(aliveW float64, nFailed int) float64 {
	if nFailed == 0 {
		return 1
	}
	if co.wTotal > 0 {
		return aliveW / co.wTotal
	}
	return float64(len(co.shards)-nFailed) / float64(len(co.shards))
}

// exchState is one shard's position in a bound-exchange: the tightest
// certified interval for F_S(q) seen so far (new answers are intersected
// in — every certified interval remains valid), the budget the next round
// would use, and liveness for this query.
type exchState struct {
	lb, ub  float64
	eps     float64
	alive   bool
	queried bool
}

func (s *exchState) gap() float64 { return s.ub - s.lb }

// apply intersects a new certified interval with the accumulated one.
func (s *exchState) apply(b Bounds) {
	lb := math.Max(s.lb, b.LB)
	ub := math.Min(s.ub, b.UB)
	if lb > ub {
		// Certified intervals can only cross by floating-point noise;
		// collapse to the midpoint of the overlap defect.
		m := (lb + ub) / 2
		lb, ub = m, m
	}
	s.lb, s.ub = lb, ub
	s.queried = true
}

func sumBounds(st []*exchState) (lb, ub float64) {
	for _, s := range st {
		lb += s.lb
		ub += s.ub
	}
	return lb, ub
}

// Threshold decides F_P(q) > τ by rounds of bound exchange: shards return
// certified [lb, ub] intervals at a coarse budget first, the sums are
// tested against τ after every arrival, and the query terminates — and
// cancels outstanding shard work — the moment Σ lb > τ or Σ ub ≤ τ.
// Undecided rounds re-query only the shards whose interval width still
// matters at τ, with geometrically shrinking budgets, falling back to an
// exact round after MaxRounds.
func (co *Coordinator) Threshold(ctx context.Context, q []float64, tau float64) (ThresholdResult, error) {
	if err := co.checkQuery(q); err != nil {
		return ThresholdResult{}, err
	}
	if math.IsNaN(tau) || math.IsInf(tau, 0) {
		return ThresholdResult{}, fmt.Errorf("cluster: tau must be finite, got %v", tau)
	}

	st := make([]*exchState, len(co.shards))
	for i, s := range co.shards {
		lb, ub := co.apriori(s.info)
		st[i] = &exchState{lb: lb, ub: ub, eps: co.cfg.InitialEps, alive: true}
	}
	decided := func(lb, ub float64) (over, ok bool) {
		if lb > tau {
			return true, true
		}
		if ub <= tau {
			return false, true
		}
		return false, false
	}

	var mu sync.Mutex // guards st during a round's concurrent updates
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return ThresholdResult{}, err
		}
		lb, ub := sumBounds(st)
		if over, ok := decided(lb, ub); ok {
			return co.thresholdResult(over, st), nil
		}
		exactRound := round >= co.cfg.MaxRounds
		todo := co.thresholdTodo(st, lb, ub, tau, exactRound)
		if len(todo) == 0 {
			// Every reachable shard is fully refined; the residual
			// interval straddling τ belongs to unreachable shards.
			return ThresholdResult{}, fmt.Errorf("%w (%.1f%% of weight mass unreachable)",
				ErrIndeterminate, 100*(1-co.coveredFraction(co.aliveWeight(st), co.countDead(st))))
		}

		rctx, cancel := context.WithCancel(ctx)
		var wg sync.WaitGroup
		for _, i := range todo {
			eps := st[i].eps
			if exactRound {
				eps = 0
			}
			wg.Add(1)
			go func(i int, eps float64) {
				defer wg.Done()
				b, err := call(rctx, co, co.shards[i], func(ctx context.Context, c ShardClient) (Bounds, error) {
					return c.Bounds(ctx, q, eps)
				})
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					// Our own early cancellation is not a shard failure;
					// anything else marks the shard dead for this query.
					// Its accumulated interval stays in the sums — a
					// certified bound does not expire when its shard does.
					if rctx.Err() == nil {
						st[i].alive = false
					}
					return
				}
				st[i].apply(b)
				if _, ok := decided(sumBounds(st)); ok {
					cancel()
				}
			}(i, eps)
		}
		wg.Wait()
		cancel()
		for _, i := range todo {
			st[i].eps /= 4
		}
	}
}

// thresholdTodo picks the shards worth re-querying: those whose interval
// width exceeds their weight-proportional share of the slack still
// separating the sums from a verdict. Shards already tight (or dead) are
// skipped — they "return early" in the paper's sense. If the heuristic
// would idle while refinement could still move the sums, every loose
// reachable shard is queried.
func (co *Coordinator) thresholdTodo(st []*exchState, sumLB, sumUB, tau float64, exactRound bool) []int {
	minNeed := math.Min(tau-sumLB, sumUB-tau)
	var todo, loose []int
	for i, s := range st {
		if !s.alive || s.gap() <= 0 {
			continue
		}
		loose = append(loose, i)
		if exactRound {
			todo = append(todo, i)
			continue
		}
		share := 1.0 / float64(len(st))
		if co.wTotal > 0 {
			share = co.shards[i].info.Weight() / co.wTotal
		}
		if s.gap() > minNeed*share {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return loose
	}
	return todo
}

func (co *Coordinator) aliveWeight(st []*exchState) float64 {
	var w float64
	for i, s := range st {
		if s.alive {
			w += co.shards[i].info.Weight()
		}
	}
	return w
}

func (co *Coordinator) countDead(st []*exchState) int {
	n := 0
	for _, s := range st {
		if !s.alive {
			n++
		}
	}
	return n
}

func (co *Coordinator) thresholdResult(over bool, st []*exchState) ThresholdResult {
	var failed []string
	for i, s := range st {
		if !s.alive {
			failed = append(failed, co.shards[i].client.Name())
		}
	}
	return ThresholdResult{
		Over:    over,
		Partial: len(failed) > 0,
		Covered: co.coveredFraction(co.aliveWeight(st), len(failed)),
		Failed:  failed,
	}
}

// approxDone replicates the engine's approximate termination test over
// summed cluster bounds: relative-ε certificate for non-negative lower
// bounds, the symmetric midpoint form otherwise.
func approxDone(lb, ub, eps float64) bool {
	if lb >= 0 {
		return ub <= (1+eps)*lb
	}
	mid := math.Abs(lb+ub) / 2
	return (ub-lb)*(1+eps) <= 2*eps*mid
}

// Approximate computes F_P(q) to relative error eps. Round 0 queries
// every shard at the global budget — for non-negative aggregates the
// per-shard certificates compose and one round suffices. When they do
// not, the global gap allowance is split across shards proportional to
// their weight mass W_S (the shard holding more mass gets more absolute
// slack), and only shards exceeding their allocation are re-queried at
// geometrically tighter budgets: small-gap shards return early. The
// allocation is self-consistent — if every shard fits its share the global
// certificate already holds — so undecided rounds always have work.
func (co *Coordinator) Approximate(ctx context.Context, q []float64, eps float64) (Result, error) {
	if err := co.checkQuery(q); err != nil {
		return Result{}, err
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return Result{}, fmt.Errorf("cluster: eps must be positive and finite, got %v", eps)
	}

	st := make([]*exchState, len(co.shards))
	for i, s := range co.shards {
		lb, ub := co.apriori(s.info)
		st[i] = &exchState{lb: lb, ub: ub, eps: eps, alive: true}
	}

	var mu sync.Mutex
	runRound := func(todo []int, exact bool) error {
		var wg sync.WaitGroup
		for _, i := range todo {
			budget := st[i].eps
			if exact {
				budget = 0
			}
			wg.Add(1)
			go func(i int, budget float64) {
				defer wg.Done()
				b, err := call(ctx, co, co.shards[i], func(ctx context.Context, c ShardClient) (Bounds, error) {
					return c.Bounds(ctx, q, budget)
				})
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					st[i].alive = false
					return
				}
				st[i].apply(b)
			}(i, budget)
		}
		wg.Wait()
		for _, i := range todo {
			st[i].eps /= 4
		}
		return ctx.Err()
	}

	// Round 0: every shard at the global budget.
	all := make([]int, len(st))
	for i := range all {
		all[i] = i
	}
	if err := runRound(all, false); err != nil {
		return Result{}, err
	}

	for round := 1; ; round++ {
		// The answer covers reachable shards only; a dead shard's stale
		// interval would poison the value, so it is excluded and reported
		// through the partial contract instead.
		var lb, ub, aliveW float64
		var covered []int
		for i, s := range st {
			if !s.alive || !s.queried {
				continue
			}
			covered = append(covered, i)
			lb += s.lb
			ub += s.ub
			aliveW += co.shards[i].info.Weight()
		}
		if len(covered) == 0 {
			return Result{}, fmt.Errorf("%w: all %d shards failed", ErrUnavailable, len(st))
		}
		if approxDone(lb, ub, eps) {
			return co.approxResult(lb, ub, st), nil
		}

		// Global gap allowance at the current sums, split ∝ W_S.
		allow := eps * lb
		if lb < 0 {
			allow = 2 * eps * math.Abs(lb+ub) / 2 / (1 + eps)
		}
		exact := round >= co.cfg.MaxRounds || allow <= 0
		var todo []int
		for _, i := range covered {
			if st[i].gap() <= 0 {
				continue
			}
			if exact {
				todo = append(todo, i)
				continue
			}
			share := 1.0 / float64(len(covered))
			if aliveW > 0 {
				share = co.shards[i].info.Weight() / aliveW
			}
			if st[i].gap() > allow*share {
				todo = append(todo, i)
			}
		}
		if len(todo) == 0 {
			// Σ gap ≤ Σ allocation = allowance: certificate holds.
			return co.approxResult(lb, ub, st), nil
		}
		if err := runRound(todo, exact); err != nil {
			return Result{}, err
		}
	}
}

func (co *Coordinator) approxResult(lb, ub float64, st []*exchState) Result {
	var failed []string
	var aliveW float64
	for i, s := range st {
		if s.alive && s.queried {
			aliveW += co.shards[i].info.Weight()
		} else {
			failed = append(failed, co.shards[i].client.Name())
		}
	}
	return Result{
		Value:   (lb + ub) / 2,
		LB:      lb,
		UB:      ub,
		Partial: len(failed) > 0,
		Covered: co.coveredFraction(aliveW, len(failed)),
		Failed:  failed,
	}
}

// call runs one logical shard operation with the robustness ladder:
// per-attempt timeout, a hedged request to a replica once the primary
// outlives its recent latency quantile, and a retry with backoff after a
// failure. Counters record every rung for /v1/stats.
func call[T any](ctx context.Context, co *Coordinator, s *shardState, fn func(context.Context, ShardClient) (T, error)) (T, error) {
	s.requests.Add(1)
	attempt := func(c ShardClient) (T, error) {
		actx, cancel := context.WithTimeout(ctx, co.cfg.Timeout)
		defer cancel()
		t0 := time.Now()
		v, err := fn(actx, c)
		if err == nil {
			s.lat.record(time.Since(t0))
		}
		return v, err
	}

	v, err := hedged(co, s, attempt)
	if err == nil {
		return v, nil
	}
	var zero T
	if ctx.Err() != nil {
		// The caller cancelled (verdict reached, deadline): not a shard
		// failure, no retry, no error counter.
		return zero, err
	}
	for r := 0; r < co.cfg.Retries; r++ {
		select {
		case <-time.After(co.cfg.Backoff):
		case <-ctx.Done():
			return zero, ctx.Err()
		}
		s.retries.Add(1)
		target := s.client
		if len(s.replicas) > 0 {
			target = s.replicas[r%len(s.replicas)]
		}
		if v, rerr := attempt(target); rerr == nil {
			return v, nil
		} else if ctx.Err() == nil {
			err = rerr
		}
	}
	s.errors.Add(1)
	return zero, err
}

// hedged runs one attempt against the primary, arming a second attempt
// against the first replica if the primary is still in flight past the
// configured latency quantile. First success wins; the loser's context is
// cancelled through the attempt timeout.
func hedged[T any](co *Coordinator, s *shardState, attempt func(ShardClient) (T, error)) (T, error) {
	var zero T
	delay, warm := s.lat.quantile(co.cfg.HedgeQuantile)
	if !warm || len(s.replicas) == 0 {
		return attempt(s.client)
	}
	if delay < co.cfg.HedgeMin {
		delay = co.cfg.HedgeMin
	}

	type outcome struct {
		v       T
		err     error
		replica bool
	}
	ch := make(chan outcome, 2)
	go func() {
		v, err := attempt(s.client)
		ch <- outcome{v, err, false}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()

	pending := 1
	launched := false
	var firstErr error
	for {
		select {
		case o := <-ch:
			pending--
			if o.err == nil {
				if o.replica {
					s.hedgeWins.Add(1)
				}
				return o.v, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if pending == 0 {
				return zero, firstErr
			}
		case <-timer.C:
			if !launched {
				launched = true
				pending++
				s.hedges.Add(1)
				go func() {
					v, err := attempt(s.replicas[0])
					ch <- outcome{v, err, true}
				}()
			}
		}
	}
}

// latencyWindow is a fixed ring of recent successful call durations; the
// hedge delay is a quantile over it. A handful of samples is too noisy to
// hedge on, so quantile reports cold until the window has warmSamples.
type latencyWindow struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int // filled entries (≤ len(buf))
	idx int // next write position
}

const warmSamples = 8

func (l *latencyWindow) record(d time.Duration) {
	l.mu.Lock()
	l.buf[l.idx] = d
	l.idx = (l.idx + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// quantile returns the q-quantile of the window, or warm == false while
// the window has fewer than warmSamples entries.
func (l *latencyWindow) quantile(q float64) (d time.Duration, warm bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n < warmSamples {
		return 0, false
	}
	tmp := make([]time.Duration, l.n)
	copy(tmp, l.buf[:l.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(q * float64(l.n-1))
	return tmp[i], true
}

// ShardStats is one shard's robustness counters and latency profile, the
// JSON unit of the coordinator's /v1/stats.
type ShardStats struct {
	Name      string  `json:"name"`
	Points    int     `json:"points"`
	Weight    float64 `json:"weight"`
	Replicas  int     `json:"replicas"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	Retries   int64   `json:"retries"`
	Hedges    int64   `json:"hedges"`
	HedgeWins int64   `json:"hedge_wins"`
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
}

// Stats snapshots per-shard counters for monitoring.
func (co *Coordinator) Stats() []ShardStats {
	out := make([]ShardStats, len(co.shards))
	for i, s := range co.shards {
		p50, _ := s.lat.rawQuantile(0.50)
		p99, _ := s.lat.rawQuantile(0.99)
		out[i] = ShardStats{
			Name:      s.client.Name(),
			Points:    s.info.Points,
			Weight:    s.info.Weight(),
			Replicas:  len(s.replicas),
			Requests:  s.requests.Load(),
			Errors:    s.errors.Load(),
			Retries:   s.retries.Load(),
			Hedges:    s.hedges.Load(),
			HedgeWins: s.hedgeWins.Load(),
			P50Millis: float64(p50) / float64(time.Millisecond),
			P99Millis: float64(p99) / float64(time.Millisecond),
		}
	}
	return out
}

// rawQuantile is quantile without the warm-up gate, for stats reporting.
func (l *latencyWindow) rawQuantile(q float64) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return 0, false
	}
	tmp := make([]time.Duration, l.n)
	copy(tmp, l.buf[:l.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[int(q*float64(l.n-1))], true
}

// ShardHealth is one shard's readiness probe result.
type ShardHealth struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	Err  string `json:"error,omitempty"`
}

// Health probes every shard's readiness concurrently (primary, then
// replicas on failure).
func (co *Coordinator) Health(ctx context.Context) []ShardHealth {
	out := make([]ShardHealth, len(co.shards))
	var wg sync.WaitGroup
	for i, s := range co.shards {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			targets := append([]ShardClient{s.client}, s.replicas...)
			var err error
			for _, t := range targets {
				pctx, cancel := context.WithTimeout(ctx, co.cfg.Timeout)
				err = t.Healthy(pctx)
				cancel()
				if err == nil {
					break
				}
			}
			h := ShardHealth{Name: s.client.Name(), OK: err == nil}
			if err != nil {
				h.Err = err.Error()
			}
			out[i] = h
		}(i, s)
	}
	wg.Wait()
	return out
}
