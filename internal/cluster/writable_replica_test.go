package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"karl"
	"karl/internal/replica"
	"karl/internal/server"
	"karl/internal/shard"
)

// replicatedHTTPCluster builds an n-member writable cluster whose leaders
// sit behind downable HTTP servers and whose followers are in-process
// appliers pulling straight from the leader engines (the transport the
// coordinator kills is the one the followers do NOT depend on, so a
// "crashed" leader still has a caught-up copy to promote — exactly the
// replication scenario). Returns the coordinator, the leader engines, the
// kill switches and the appliers, index-aligned with member ids 1..n.
func replicatedHTTPCluster(t *testing.T, n int, kern karl.Kernel) (*WritableCoordinator, []*karl.DynamicEngine, []*downableHandler, []*replica.Applier) {
	t.Helper()
	engines := make([]*karl.DynamicEngine, n)
	switches := make([]*downableHandler, n)
	appliers := make([]*replica.Applier, n)
	founders := make([]WritableShard, n)
	for i := range founders {
		engines[i] = newDynEngine(t, kern, karl.KDTree)
		srv, err := server.NewMutable(engines[i])
		if err != nil {
			t.Fatalf("server.NewMutable: %v", err)
		}
		switches[i] = &downableHandler{inner: srv}
		ts := httptest.NewServer(switches[i])
		t.Cleanup(ts.Close)
		appliers[i] = replica.NewApplier(newDynEngine(t, kern, karl.KDTree),
			replica.EngineSource{Eng: engines[i]})
		founders[i] = WritableShard{
			Name:      fmt.Sprintf("h%d", i),
			Client:    NewHTTPShard(ts.URL),
			Followers: []FollowerClient{NewLocalFollower(fmt.Sprintf("h%d-r", i), appliers[i])},
		}
	}
	wco, err := NewWritable(context.Background(), shard.Hash, founders, localSpawn,
		WritableConfig{Config: Config{Timeout: 2 * time.Second, Backoff: time.Millisecond}})
	if err != nil {
		t.Fatalf("NewWritable: %v", err)
	}
	return wco, engines, switches, appliers
}

// TestWritableChaosPromotionMidSplit is the failover half of the
// split-safety gate: a leader killed mid-split is ambiguous exactly as
// before, but when a caught-up follower exists the coordinator promotes
// it instead of quarantining — the member keeps its id (gid lineage and
// hash routing survive), takes the follower's name, and the cluster keeps
// answering with FULL coverage because the follower holds a converged
// copy of everything the dead leader acknowledged.
func TestWritableChaosPromotionMidSplit(t *testing.T) {
	ctx := context.Background()
	wco, _, switches, appliers := replicatedHTTPCluster(t, 2, karl.Gaussian(0.5))

	pts, w := dataset(400, 3, 41, "II")
	gids := mustInsert(t, wco, pts, w)
	for i := range pts {
		if i%9 == 4 {
			if err := wco.Delete(ctx, gids[i]); err != nil {
				t.Fatalf("Delete(%d): %v", gids[i], err)
			}
		}
	}
	// Converge member 2's follower, then freeze the leader's state so the
	// promoted copy must answer for it exactly.
	if err := appliers[1].CatchUp(ctx); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	q := []float64{0.2, -0.1, 0.5}
	full, err := wco.Aggregate(ctx, q)
	if err != nil || full.Partial {
		t.Fatalf("healthy aggregate: res=%+v err=%v", full, err)
	}

	// Kill the member-2 leader, then ask it to split: the response is
	// lost, the split is ambiguous, and failover must promote rather than
	// quarantine.
	epoch0 := wco.Epoch()
	switches[1].down.Store(true)
	if err := wco.Split(ctx, 2); err == nil {
		t.Fatal("split against a dead shard must fail")
	}
	if got := wco.Promotions(); got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
	if got := wco.Quarantines(); got != 0 {
		t.Fatalf("Quarantines = %d, want 0 (a live follower was available)", got)
	}
	if wco.Epoch() != epoch0+1 {
		t.Fatalf("promotion must advance the epoch: %d -> %d", epoch0, wco.Epoch())
	}
	if wco.NumShards() != 2 {
		t.Fatalf("promotion must not change membership size: %d", wco.NumShards())
	}
	if !appliers[1].Promoted() {
		t.Fatal("member 2's applier should have been promoted")
	}

	// The promoted membership answers with full coverage and the same
	// value as before the crash.
	res, err := wco.Aggregate(ctx, q)
	if err != nil {
		t.Fatalf("post-promotion aggregate: %v", err)
	}
	if res.Partial || res.Covered != 1 {
		t.Fatalf("post-promotion aggregate must have full coverage: %+v", res)
	}
	if diff := math.Abs(res.Value - full.Value); diff > 1e-9*math.Max(math.Abs(full.Value), 1) {
		t.Fatalf("post-promotion value %v, want %v", res.Value, full.Value)
	}

	// Manifest: member 2 keeps its id, takes the follower's name, stays a
	// leader, and no longer records the promoted replica.
	man := wco.Manifest()
	mb := man.Member(2)
	if mb == nil || mb.Name != "h1-r" || mb.Role != shard.RoleLeader {
		t.Fatalf("promoted member = %+v, want id 2 named h1-r with role leader", mb)
	}
	for _, r := range mb.Replicas {
		if r.Name == "h1-r" {
			t.Fatalf("promoted follower must leave the replica set: %+v", mb.Replicas)
		}
	}

	// Gid lineage: ids the dead leader assigned still route to member 2
	// and now resolve against the promoted copy.
	deleted := false
	for i, gid := range gids {
		if i%9 == 4 || gid>>48 != 2 {
			continue
		}
		if err := wco.Delete(ctx, gid); err != nil {
			t.Fatalf("post-promotion Delete(%d): %v", gid, err)
		}
		deleted = true
		break
	}
	if !deleted {
		t.Fatal("dataset routed no points to member 2")
	}

	// Writes route again: the member is live, not quarantined.
	more, mw := dataset(60, 3, 43, "II")
	mustInsert(t, wco, more, mw)

	// The /v1/stats cluster block reports the new topology and counters.
	front := httptest.NewServer(NewWritableHTTPServer(wco))
	defer front.Close()
	hres, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer hres.Body.Close()
	var stats ClusterStatsResponse
	if err := json.NewDecoder(hres.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Cluster == nil {
		t.Fatal("writable /v1/stats must carry a cluster block")
	}
	if stats.Cluster.Promotions != 1 || stats.Cluster.Quarantines != 0 {
		t.Fatalf("cluster block counters = %+v", stats.Cluster)
	}
	var seen bool
	for _, m := range stats.Cluster.Members {
		if m.ID == 2 {
			seen = true
			if m.Name != "h1-r" || m.Role != "leader" || m.Quarantined {
				t.Fatalf("cluster block member 2 = %+v", m)
			}
		}
	}
	if !seen {
		t.Fatalf("cluster block missing member 2: %+v", stats.Cluster.Members)
	}
}

// TestWritableChaosPromotionUnderWrites is the chaos promotion acceptance
// gate: a 4-shard writable coordinator with one replication follower per
// shard, appliers running continuously under a sustained insert/delete
// stream, survives a leader kill — the very next routed insert fails over
// onto the caught-up follower automatically and the recovered cluster
// satisfies the ε/τ contracts against a monolithic DynamicEngine fed the
// identical mutation stream.
func TestWritableChaosPromotionUnderWrites(t *testing.T) {
	ctx := context.Background()
	kern := karl.Gaussian(0.5)
	wco, _, switches, appliers := replicatedHTTPCluster(t, 4, kern)
	mono := newDynEngine(t, kern, karl.KDTree)

	// Keep every follower pulling in the background for the whole run.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	runDone := make([]chan struct{}, len(appliers))
	for i, a := range appliers {
		runDone[i] = make(chan struct{})
		go func(a *replica.Applier, done chan struct{}) {
			defer close(done)
			_ = a.Run(runCtx, time.Millisecond)
		}(a, runDone[i])
	}

	// Wave 1 under live replication: inserts and deletes mirrored into the
	// monolith.
	pts1, w1 := dataset(360, 3, 7, "III")
	gids := mustInsert(t, wco, pts1, w1)
	mids, err := mono.InsertBulk(pts1, w1)
	if err != nil {
		t.Fatalf("mono.InsertBulk: %v", err)
	}
	for i := range pts1 {
		if i%7 != 0 {
			continue
		}
		if err := wco.Delete(ctx, gids[i]); err != nil {
			t.Fatalf("Delete(%d): %v", gids[i], err)
		}
		if err := mono.Delete(mids[i]); err != nil {
			t.Fatalf("mono.Delete(%d): %v", mids[i], err)
		}
	}

	// Converge the victim's follower so no acknowledged write is lost,
	// then kill the leader. The stream does NOT stop: the next insert that
	// routes to the dead member hits the failure, the coordinator promotes
	// the follower mid-call and retries onto it.
	const victim = 3 // member id; engines/switches index victim-1
	if err := appliers[victim-1].CatchUp(ctx); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	switches[victim-1].down.Store(true)

	pts2, w2 := dataset(200, 3, 8, "III")
	gids2 := mustInsert(t, wco, pts2, w2) // must succeed via auto-failover
	mids2, err := mono.InsertBulk(pts2, w2)
	if err != nil {
		t.Fatalf("mono.InsertBulk: %v", err)
	}
	if got := wco.Promotions(); got != 1 {
		t.Fatalf("Promotions = %d, want 1 (insert should have failed over)", got)
	}
	if got := wco.Quarantines(); got != 0 {
		t.Fatalf("Quarantines = %d, want 0", got)
	}

	// Keep mutating after the failover: deletes mix pre-kill ids assigned
	// by the dead leader (lineage must survive the promotion) with
	// post-promotion ones.
	for i := range pts1 {
		if i%7 == 0 || i%11 != 3 {
			continue
		}
		if err := wco.Delete(ctx, gids[i]); err != nil {
			t.Fatalf("post-promotion Delete(%d): %v", gids[i], err)
		}
		if err := mono.Delete(mids[i]); err != nil {
			t.Fatalf("mono.Delete(%d): %v", mids[i], err)
		}
	}
	for i := range pts2 {
		if i%5 != 1 {
			continue
		}
		if err := wco.Delete(ctx, gids2[i]); err != nil {
			t.Fatalf("Delete(%d): %v", gids2[i], err)
		}
		if err := mono.Delete(mids2[i]); err != nil {
			t.Fatalf("mono.Delete(%d): %v", mids2[i], err)
		}
	}

	// Quiesce before comparing: the membership rebuilt by the promotion
	// wired the surviving members' live followers in as read hedge
	// targets, and a hedged read may legitimately be served by a follower
	// within its replication lag (bounded staleness, documented in DESIGN
	// §7.2). The equivalence gate asserts the converged fixed point, so
	// drain that lag first.
	for i, a := range appliers {
		if i == victim-1 {
			continue
		}
		if err := a.CatchUp(ctx); err != nil {
			t.Fatalf("CatchUp(follower %d): %v", i, err)
		}
	}

	// The recovered cluster must satisfy the writable equivalence gate.
	const eps = 0.05
	queries, _ := dataset(5, 3, 11, "I")
	for qi, q := range queries {
		exact, _, err := mono.AggregateStats(q)
		if err != nil {
			t.Fatalf("mono.Aggregate: %v", err)
		}
		scale := math.Max(math.Abs(exact), 1)

		res, err := wco.Aggregate(ctx, q)
		if err != nil {
			t.Fatalf("q%d: Aggregate: %v", qi, err)
		}
		if res.Partial || res.Covered != 1 {
			t.Fatalf("q%d: unexpected partial result %+v", qi, res)
		}
		if diff := math.Abs(res.Value - exact); diff > 1e-9*scale {
			t.Errorf("q%d: aggregate %v, want %v (diff %g)", qi, res.Value, exact, diff)
		}

		margin := math.Max(0.05*math.Abs(exact), 1e-3)
		for _, tau := range []float64{exact - margin, exact + margin} {
			tr, err := wco.Threshold(ctx, q, tau)
			if err != nil {
				t.Fatalf("q%d: Threshold(%v): %v", qi, tau, err)
			}
			if want := exact > tau; tr.Over != want {
				t.Errorf("q%d: threshold(%v) = %v, want %v (exact %v)", qi, tau, tr.Over, want, exact)
			}
		}

		ar, err := wco.Approximate(ctx, q, eps)
		if err != nil {
			t.Fatalf("q%d: Approximate: %v", qi, err)
		}
		if tol := eps*math.Abs(exact) + 1e-9*scale; math.Abs(ar.Value-exact) > tol {
			t.Errorf("q%d: approximate %v outside ±%g of %v", qi, ar.Value, tol, exact)
		}
		if ar.LB-1e-9*scale > exact || ar.UB+1e-9*scale < exact {
			t.Errorf("q%d: exact %v outside certified [%v, %v]", qi, exact, ar.LB, ar.UB)
		}
	}

	// A split of the promoted member exercises the full lifecycle on the
	// recovered topology.
	if err := wco.Split(ctx, victim); err != nil {
		t.Fatalf("post-promotion Split: %v", err)
	}
	if wco.NumShards() != 5 {
		t.Fatalf("NumShards = %d after split, want 5", wco.NumShards())
	}

	// Shut the appliers down; the promoted one must already have exited
	// its run loop on its own.
	cancel()
	for i, done := range runDone {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("applier %d run loop did not stop", i)
		}
	}
}

// TestWritableChaosPromotionNotCaughtUp pins the fallback: a leader dying
// while its only follower is still mid-catch-up (never completed a first
// sync) cannot promote — the copy would silently miss acknowledged writes
// — so the member is quarantined and answers degrade to the explicit
// partial contract, exactly as if it had no follower at all.
func TestWritableChaosPromotionNotCaughtUp(t *testing.T) {
	ctx := context.Background()
	wco, engines, switches, appliers := replicatedHTTPCluster(t, 2, karl.Gaussian(0.5))

	pts, w := dataset(300, 3, 23, "II")
	mustInsert(t, wco, pts, w)
	if st := appliers[1].Status(); st.State == replica.StateLive.String() {
		t.Fatalf("precondition: follower must not be caught up yet, state %q", st.State)
	}

	q := []float64{0.1, 0.4, -0.2}
	aliveF, _, err := engines[0].AggregateStats(q)
	if err != nil {
		t.Fatalf("engine aggregate: %v", err)
	}

	switches[1].down.Store(true)
	if err := wco.Split(ctx, 2); err == nil {
		t.Fatal("split against a dead shard must fail")
	}
	if got := wco.Promotions(); got != 0 {
		t.Fatalf("Promotions = %d, want 0 (follower never caught up)", got)
	}
	if got := wco.Quarantines(); got != 1 {
		t.Fatalf("Quarantines = %d, want 1", got)
	}

	res, err := wco.Aggregate(ctx, q)
	if err != nil {
		t.Fatalf("degraded aggregate: %v", err)
	}
	if !res.Partial || len(res.Failed) != 1 {
		t.Fatalf("degraded aggregate should be partial with one failed member: %+v", res)
	}
	if math.Abs(res.Value-aliveF) > 1e-9*math.Max(math.Abs(aliveF), 1) {
		t.Fatalf("partial value %v, want live mass %v", res.Value, aliveF)
	}
	if _, err := wco.Insert(ctx, pts[:8], nil); err == nil {
		t.Fatal("insert routing to a quarantined member must fail")
	}
}

// TestWritableOperatorPromote exercises the operational failover entry
// point: promoting a healthy member's follower by hand swaps the write
// path onto the follower immediately, and the old leader — still alive —
// is simply out of the membership.
func TestWritableOperatorPromote(t *testing.T) {
	ctx := context.Background()
	wco, _, _, appliers := replicatedHTTPCluster(t, 2, karl.Gaussian(1))

	pts, w := dataset(200, 3, 17, "I")
	gids := mustInsert(t, wco, pts, w)
	if err := appliers[0].CatchUp(ctx); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	if err := wco.Promote(ctx, 1); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if !appliers[0].Promoted() {
		t.Fatal("member 1's applier should be promoted")
	}
	// Promoting again must fail loudly: the follower set is empty now.
	if err := wco.Promote(ctx, 1); err == nil {
		t.Fatal("second promotion must fail: no follower left")
	}
	// Writes and pre-promotion ids keep working against the new leader.
	for i, gid := range gids {
		if gid>>48 != 1 || i%2 == 0 {
			continue
		}
		if err := wco.Delete(ctx, gid); err != nil {
			t.Fatalf("Delete(%d): %v", gid, err)
		}
	}
	mustInsert(t, wco, pts[:20], nil)
}
