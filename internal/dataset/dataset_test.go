package dataset

import (
	"math"
	"testing"

	"karl/internal/vec"
)

func TestWeightingString(t *testing.T) {
	if TypeI.String() != "I" || TypeII.String() != "II" || TypeIII.String() != "III" {
		t.Fatal("Weighting.String mismatch")
	}
	if Weighting(9).String() != "Weighting(9)" {
		t.Fatal("unknown Weighting.String mismatch")
	}
}

func TestCatalogMirrorsTableVI(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("catalog has %d datasets, Table VI lists 10", len(cat))
	}
	byType := map[Weighting]int{}
	for _, s := range cat {
		byType[s.Weighting]++
		if s.Dim < 1 || s.NRaw < 1 {
			t.Fatalf("%s: bad spec %+v", s.Name, s)
		}
	}
	if byType[TypeI] != 4 || byType[TypeII] != 3 || byType[TypeIII] != 3 {
		t.Fatalf("type counts %v, want 4/3/3", byType)
	}
	// Spot-check paper values.
	susy, err := ByName("susy")
	if err != nil {
		t.Fatal(err)
	}
	if susy.NRaw != 4990000 || susy.Dim != 18 {
		t.Fatalf("susy spec %+v does not match Table VI", susy)
	}
	a9a, _ := ByName("a9a")
	if a9a.NModel != 11772 || a9a.Dim != 123 {
		t.Fatalf("a9a spec %+v does not match Table VI", a9a)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestGenerateTypeI(t *testing.T) {
	spec, _ := ByName("home")
	ds, err := Generate(spec, Options{Scale: 1.0 / 1000, Queries: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Weights != nil {
		t.Fatal("Type I should have nil weights")
	}
	if ds.Points.Cols != 10 {
		t.Fatalf("home should be 10-d, got %d", ds.Points.Cols)
	}
	if ds.Queries.Rows != 50 {
		t.Fatalf("query count %d want 50", ds.Queries.Rows)
	}
	if ds.Gamma <= 0 {
		t.Fatalf("Scott gamma %v", ds.Gamma)
	}
	// Normalized to [0,1]^d.
	for _, v := range ds.Points.Data {
		if v < 0 || v > 1 {
			t.Fatalf("point coordinate %v outside [0,1]", v)
		}
	}
}

func TestGenerateTypeII(t *testing.T) {
	spec, _ := ByName("nsl-kdd")
	ds, err := Generate(spec, Options{Scale: 1.0 / 100, Queries: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Weights == nil {
		t.Fatal("Type II needs weights")
	}
	var sum float64
	for _, w := range ds.Weights {
		if w <= 0 {
			t.Fatalf("Type II weight %v not positive", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Σw = %v, want 1 (ν-SVM style)", sum)
	}
	if ds.Tau <= 0 {
		t.Fatalf("surrogate τ = %v, want positive", ds.Tau)
	}
	if ds.Gamma != 1.0/41 {
		t.Fatalf("gamma %v, want LibSVM default 1/d", ds.Gamma)
	}
}

func TestGenerateTypeIII(t *testing.T) {
	spec, _ := ByName("ijcnn1")
	ds, err := Generate(spec, Options{Scale: 1.0 / 50, Queries: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var pos, neg bool
	for _, w := range ds.Weights {
		if w > 0 {
			pos = true
		}
		if w < 0 {
			neg = true
		}
	}
	if !pos || !neg {
		t.Fatal("Type III weights must mix signs")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := ByName("miniboone")
	a, _ := Generate(spec, Options{Scale: 1.0 / 500, Queries: 10, Seed: 42})
	b, _ := Generate(spec, Options{Scale: 1.0 / 500, Queries: 10, Seed: 42})
	if !vec.Equal(a.Points.Data, b.Points.Data, 0) {
		t.Fatal("same seed must reproduce points")
	}
	c, _ := Generate(spec, Options{Scale: 1.0 / 500, Queries: 10, Seed: 43})
	if vec.Equal(a.Points.Data, c.Points.Data, 0) {
		t.Fatal("different seed should differ")
	}
}

func TestGenerateSizedExact(t *testing.T) {
	spec, _ := ByName("susy")
	ds, err := GenerateSized(spec, 1234, 17, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Points.Rows != 1234 || ds.Queries.Rows != 17 {
		t.Fatalf("sizes %d/%d", ds.Points.Rows, ds.Queries.Rows)
	}
	if _, err := GenerateSized(spec, 1, 10, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := GenerateSized(spec, 100, 0, 1); err == nil {
		t.Fatal("queries=0 accepted")
	}
}

func TestScaleCapping(t *testing.T) {
	spec, _ := ByName("susy") // 4.99M raw
	ds, err := Generate(spec, Options{Scale: 1, MaxN: 2000, Queries: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Points.Rows != 2000 {
		t.Fatalf("MaxN cap not applied: %d", ds.Points.Rows)
	}
	// Tiny scale gets floored at 64.
	ds, _ = Generate(spec, Options{Scale: 1e-9, Queries: 5, Seed: 1})
	if ds.Points.Rows != 64 {
		t.Fatalf("floor not applied: %d", ds.Points.Rows)
	}
}

func TestShellCloudIsShellLike(t *testing.T) {
	// Support-vector surrogates: for a single cluster, distances to the
	// centroid should concentrate near the shell radius (low relative
	// variance compared to a filled cloud).
	spec := Spec{Name: "shell-test", NRaw: 2000, Dim: 8, Weighting: TypeII, Clusters: 1, Spread: 0.03}
	ds, err := GenerateSized(spec, 2000, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	center := vec.Mean(rowsOf(ds.Points))
	var mean, m2 float64
	for i := 0; i < ds.Points.Rows; i++ {
		d := vec.Dist(center, ds.Points.Row(i))
		mean += d
	}
	mean /= float64(ds.Points.Rows)
	for i := 0; i < ds.Points.Rows; i++ {
		d := vec.Dist(center, ds.Points.Row(i)) - mean
		m2 += d * d
	}
	cv := math.Sqrt(m2/float64(ds.Points.Rows)) / mean
	if cv > 0.15 {
		t.Fatalf("shell coefficient of variation %v too high — not shell-like", cv)
	}
}

func rowsOf(m *vec.Matrix) [][]float64 {
	rows := make([][]float64, m.Rows)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}
