// Package dataset generates the synthetic stand-ins for the paper's
// evaluation datasets (Table VI). The real datasets (UCI / LIBSVM
// downloads) are unavailable offline, so each named dataset is replaced by
// a seeded generator matching its dimensionality and the structural
// properties the algorithms are sensitive to:
//
//   - Type I (KDE) datasets are Gaussian-mixture clouds normalized to
//     [0,1]^d — bound tightness depends on clusteredness, which the
//     cluster count and spread control.
//   - Type II/III (SVM) datasets are "support-vector-like": tight shells
//     or boundary bands of points close to one another in [0,1]^d, with
//     positive (Type II) or mixed-sign (Type III) weights, reproducing the
//     property Section V-C highlights (support vectors hug the decision
//     boundary and each other).
//
// Sizes are scaled down from the paper's raw counts by a configurable
// factor so the whole suite runs on a small machine; the per-dataset shape
// (relative n, d) is preserved.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"karl/internal/kde"
	"karl/internal/vec"
)

// Weighting labels the paper's three weighting types.
type Weighting int

const (
	// TypeI is identical positive weights (kernel density).
	TypeI Weighting = iota
	// TypeII is arbitrary positive weights (1-class SVM).
	TypeII
	// TypeIII is unrestricted weights (2-class SVM).
	TypeIII
)

// String implements fmt.Stringer.
func (w Weighting) String() string {
	switch w {
	case TypeI:
		return "I"
	case TypeII:
		return "II"
	case TypeIII:
		return "III"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// Spec describes one named dataset from Table VI.
type Spec struct {
	Name      string
	NRaw      int // paper's raw cardinality
	NModel    int // paper's post-training size (support vectors); 0 = NRaw
	Dim       int
	Weighting Weighting
	Clusters  int     // mixture components for Type I generators
	Spread    float64 // relative cluster spread
}

// Catalog returns the specs mirroring Table VI.
func Catalog() []Spec {
	return []Spec{
		{Name: "mnist", NRaw: 60000, Dim: 784, Weighting: TypeI, Clusters: 10, Spread: 0.05},
		{Name: "miniboone", NRaw: 119596, Dim: 50, Weighting: TypeI, Clusters: 12, Spread: 0.03},
		{Name: "home", NRaw: 918991, Dim: 10, Weighting: TypeI, Clusters: 16, Spread: 0.03},
		{Name: "susy", NRaw: 4990000, Dim: 18, Weighting: TypeI, Clusters: 32, Spread: 0.02},
		{Name: "nsl-kdd", NRaw: 67343, NModel: 17510, Dim: 41, Weighting: TypeII, Clusters: 3, Spread: 0.03},
		{Name: "kdd99", NRaw: 972780, NModel: 19461, Dim: 41, Weighting: TypeII, Clusters: 3, Spread: 0.03},
		{Name: "covtype", NRaw: 581012, NModel: 25486, Dim: 54, Weighting: TypeII, Clusters: 4, Spread: 0.03},
		{Name: "ijcnn1", NRaw: 49990, NModel: 9592, Dim: 22, Weighting: TypeIII, Clusters: 2, Spread: 0.02},
		{Name: "a9a", NRaw: 32561, NModel: 11772, Dim: 123, Weighting: TypeIII, Clusters: 2, Spread: 0.02},
		{Name: "covtype-b", NRaw: 581012, NModel: 310184, Dim: 54, Weighting: TypeIII, Clusters: 4, Spread: 0.02},
	}
}

// ByName returns the catalog spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Dataset is a generated point set ready for indexing, with a query
// workload and the query parameters the paper derives per dataset.
type Dataset struct {
	Spec    Spec
	Points  *vec.Matrix
	Weights []float64 // nil for Type I
	Queries *vec.Matrix
	// Gamma is the Gaussian kernel parameter: Scott's rule for Type I,
	// 1/d (LibSVM default) for Types II/III.
	Gamma float64
	// Tau is the TKAQ threshold: μ of F over the query sample for Type I
	// (set by the experiment harness), a trained-ρ surrogate for II/III.
	Tau float64
}

// Options controls generation.
type Options struct {
	// Scale multiplies the paper's point counts (default 1/64 to keep the
	// suite laptop-sized). Applied to NModel when present, else NRaw.
	Scale float64
	// MaxN caps the scaled point count (default 50000).
	MaxN int
	// Queries is the query-set size (default 200; the paper uses 10000).
	Queries int
	// Seed drives the generator (default 1).
	Seed int64
}

func (o *Options) defaults() {
	if o.Scale <= 0 {
		o.Scale = 1.0 / 64
	}
	if o.MaxN <= 0 {
		o.MaxN = 50000
	}
	if o.Queries <= 0 {
		o.Queries = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Generate produces the synthetic stand-in for a spec.
func Generate(spec Spec, opts Options) (*Dataset, error) {
	opts.defaults()
	raw := spec.NRaw
	if spec.NModel > 0 {
		raw = spec.NModel
	}
	n := int(float64(raw) * opts.Scale)
	if n < 64 {
		n = 64
	}
	if n > opts.MaxN {
		n = opts.MaxN
	}
	return GenerateSized(spec, n, opts.Queries, opts.Seed)
}

// GenerateSized produces a stand-in with an explicit point count,
// used by the size-sweep experiment (Figure 11).
func GenerateSized(spec Spec, n, queries int, seed int64) (*Dataset, error) {
	if n < 2 || queries < 1 {
		return nil, fmt.Errorf("dataset: bad sizes n=%d queries=%d", n, queries)
	}
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{Spec: spec}
	switch spec.Weighting {
	case TypeI:
		ds.Points = mixtureCloud(rng, n, spec.Dim, spec.Clusters, spec.Spread)
		ds.Points.NormalizeUnit(0, 1)
		// Scott's rule with the paper's raw cardinality, not the scaled-down
		// count: the stand-in emulates the full dataset, and the kernel
		// sharpness (which drives how loose the SOTA bounds are) follows
		// the original n.
		scottN := spec.NRaw
		if scottN < n {
			scottN = n
		}
		gamma, err := kde.ScottGammaN(ds.Points, scottN)
		if err != nil {
			return nil, err
		}
		ds.Gamma = gamma
		ds.Queries = sampleQueries(rng, ds.Points, queries, 0.02)
	case TypeII:
		ds.Points = shellCloud(rng, n, spec.Dim, spec.Clusters, spec.Spread)
		ds.Points.NormalizeUnit(0, 1)
		ds.Weights = positiveWeights(rng, n)
		ds.Gamma = 1 / float64(spec.Dim)
		ds.Queries = sampleQueries(rng, ds.Points, queries, 0.1)
		ds.Tau = thresholdSurrogate(ds, rng)
	case TypeIII:
		ds.Points = shellCloud(rng, n, spec.Dim, spec.Clusters, spec.Spread)
		ds.Points.NormalizeUnit(0, 1)
		ds.Weights = signedWeights(rng, ds.Points)
		ds.Gamma = 1 / float64(spec.Dim)
		ds.Queries = sampleQueries(rng, ds.Points, queries, 0.1)
		ds.Tau = 0 // 2-class decision threshold: sign of F − ρ with ρ folded in
	default:
		return nil, fmt.Errorf("dataset: unknown weighting %v", spec.Weighting)
	}
	return ds, nil
}

// mixtureCloud draws n points from a heavy-tailed Gaussian mixture plus a
// diffuse uniform background. Real datasets (home, susy, miniboone) are not
// clean isotropic blobs: cluster scales vary by orders of magnitude and a
// sizeable fraction of points is scattered, which makes index bounding
// volumes much wider than the typical point distance — precisely the regime
// where endpoint-based (SOTA) bounds go loose while KARL's mean-based
// linear bounds stay informative.
func mixtureCloud(rng *rand.Rand, n, d, clusters int, spread float64) *vec.Matrix {
	if clusters < 1 {
		clusters = 1
	}
	const backgroundFrac = 0.25
	centers := make([][]float64, clusters)
	scales := make([]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.Float64()
		}
		// Log-normal per-cluster scale: some tight cores, some wide shells.
		scales[c] = spread * math.Exp(rng.NormFloat64()*0.6)
	}
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		if rng.Float64() < backgroundFrac {
			for j := range row {
				row[j] = rng.Float64()
			}
			continue
		}
		c := rng.Intn(clusters)
		for j := range row {
			row[j] = centers[c][j] + rng.NormFloat64()*scales[c]
		}
	}
	return m
}

// shellCloud draws support-vector-like points: thin shells around cluster
// centers, so points are near a "decision boundary" and near each other.
func shellCloud(rng *rand.Rand, n, d, clusters int, spread float64) *vec.Matrix {
	if clusters < 1 {
		clusters = 1
	}
	centers := make([][]float64, clusters)
	radii := make([]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.Float64()
		}
		radii[c] = 0.15 + 0.1*rng.Float64()
	}
	m := vec.NewMatrix(n, d)
	dir := make([]float64, d)
	for i := 0; i < n; i++ {
		c := rng.Intn(clusters)
		for j := range dir {
			dir[j] = rng.NormFloat64()
		}
		norm := vec.Norm(dir)
		if norm == 0 {
			norm = 1
		}
		r := radii[c] * (1 + rng.NormFloat64()*spread)
		row := m.Row(i)
		for j := range row {
			row[j] = centers[c][j] + dir[j]/norm*r
		}
	}
	return m
}

// positiveWeights draws Type II weights: positive, varied, capped like
// 1-class SVM α's (Σα = 1, α ≤ 1/(νn) with ν ≈ 0.1).
func positiveWeights(rng *rand.Rand, n int) []float64 {
	w := make([]float64, n)
	cap_ := 10.0 / float64(n) // 1/(νn) with ν = 0.1
	var sum float64
	for i := range w {
		w[i] = rng.Float64() * cap_
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// signedWeights draws Type III weights: sign determined by the side of a
// random hyperplane (mimicking α_i·y_i of a 2-class SVM), magnitudes like
// capped α's.
func signedWeights(rng *rand.Rand, pts *vec.Matrix) []float64 {
	d := pts.Cols
	normal := make([]float64, d)
	for j := range normal {
		normal[j] = rng.NormFloat64()
	}
	mid := 0.0
	for i := 0; i < pts.Rows; i++ {
		mid += vec.Dot(normal, pts.Row(i))
	}
	mid /= float64(pts.Rows)
	w := make([]float64, pts.Rows)
	for i := range w {
		mag := rng.Float64()*0.9 + 0.1
		if vec.Dot(normal, pts.Row(i)) >= mid {
			w[i] = mag
		} else {
			w[i] = -mag
		}
	}
	return w
}

// SampleQueries draws an independent query sample by jittering random
// dataset points, as the offline tuner does with its |S|=1000 sample.
func SampleQueries(pts *vec.Matrix, q int, jitter float64, seed int64) *vec.Matrix {
	return sampleQueries(rand.New(rand.NewSource(seed)), pts, q, jitter)
}

// sampleQueries picks query points by jittering random dataset points —
// the paper samples queries from the dataset itself.
func sampleQueries(rng *rand.Rand, pts *vec.Matrix, q int, jitter float64) *vec.Matrix {
	out := vec.NewMatrix(q, pts.Cols)
	for i := 0; i < q; i++ {
		src := pts.Row(rng.Intn(pts.Rows))
		dst := out.Row(i)
		for j := range dst {
			dst[j] = src[j] + rng.NormFloat64()*jitter
		}
	}
	return out
}

// thresholdSurrogate places τ near the decision surface: the median of
// F_P(q) over a small query sample, which is where a trained ρ sits and
// where pruning is hardest.
func thresholdSurrogate(ds *Dataset, rng *rand.Rand) float64 {
	sample := 32
	if ds.Queries.Rows < sample {
		sample = ds.Queries.Rows
	}
	vals := make([]float64, 0, sample)
	for i := 0; i < sample; i++ {
		q := ds.Queries.Row(rng.Intn(ds.Queries.Rows))
		var f float64
		for p := 0; p < ds.Points.Rows; p++ {
			w := 1.0
			if ds.Weights != nil {
				w = ds.Weights[p]
			}
			f += w * math.Exp(-ds.Gamma*vec.Dist2(q, ds.Points.Row(p)))
		}
		vals = append(vals, f)
	}
	// Median via partial selection.
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[j] < vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	return vals[len(vals)/2]
}
