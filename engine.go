package karl

import "io"

// QueryEngine is the read surface every serving layer shares: the static
// Engine, the segmented DynamicEngine, the per-request clones inside
// internal/server's pool, and the shard engines behind the cluster
// coordinator all present exactly this interface. It exists so the layers
// above (HTTP server, clone pool, scatter-gather coordinator) are written
// once against one abstraction instead of once per engine flavor.
//
// Like the concrete engines, a QueryEngine value is not safe for
// concurrent queries — it owns per-query refinement scratch. CloneQuery
// returns a view sharing the (possibly mutable) dataset with independent
// scratch; clone once per goroutine.
type QueryEngine interface {
	// Len is the number of live points; Dims the dataset dimensionality
	// (0 while a dynamic engine is still empty).
	Len() int
	Dims() int
	Kernel() Kernel
	// WeightMass reports pos = Σ w_i over w_i ≥ 0 and neg = Σ |w_i| over
	// w_i < 0 — the masses ε-budget allocation and degraded-mode coverage
	// accounting are stated against.
	WeightMass() (pos, neg float64)

	// The three query families of the paper, with work statistics.
	AggregateStats(q []float64) (float64, Stats, error)
	ThresholdStats(q []float64, tau float64) (bool, Stats, error)
	ApproximateStats(q []float64, eps float64) (float64, Stats, error)

	// Batch forms fan out over internal clones (workers ≤ 0 selects
	// GOMAXPROCS) or route to the dual-tree executor when configured.
	BatchAggregateStats(queries [][]float64, workers int) ([]float64, Stats, error)
	BatchThresholdStats(queries [][]float64, tau float64, workers int) ([]bool, Stats, error)
	BatchApproximateStats(queries [][]float64, eps float64, workers int) ([]float64, Stats, error)

	// DualTreeStats reports the shared batch-executor telemetry.
	DualTreeStats() DualTreeStats

	// CloneQuery returns a view over the same dataset with independent
	// query scratch, for use from another goroutine.
	CloneQuery() QueryEngine
}

// MutableEngine extends QueryEngine with the write path a dynamic engine
// offers. Epoch increases with every seal and compaction; Split and
// WriteTo together are the segment-shipping surface the cluster layer's
// shard splitting is built on (the moved half travels as a standard
// persistence stream of sealed segments).
type MutableEngine interface {
	QueryEngine
	// InsertID adds one weighted point and returns its engine-local id
	// (ids start at 1 and never recycle).
	InsertID(p []float64, w float64) (uint64, error)
	// InsertBulk adds many points (nil weights = unit) in one lock
	// acquisition with all-or-nothing validation.
	InsertBulk(points [][]float64, weights []float64) ([]uint64, error)
	// Delete removes the point with the given id, returning
	// ErrPointNotFound when no live point has it.
	Delete(id uint64) error
	// Epoch returns the current manifest epoch.
	Epoch() uint64
	// NextSeq returns the id the next insert will be assigned — the
	// fence below which ids may refer to inherited (pre-split) points.
	NextSeq() uint64
	// SplitPlane proposes a balanced axis cut over the live points (the
	// median of the widest dimension), for callers that want the engine to
	// choose its own kd split rule. It fails when no axis cut can separate
	// the data (empty, single point, or all points identical).
	SplitPlane() (dim int, cut float64, err error)
	// Split extracts every live point for which pred is true into a new
	// engine with the same kernel and build configuration, removing those
	// points from the receiver. Sequence numbers, insert times and decay
	// state travel with the moved points, so ids stay valid on the other
	// side.
	Split(pred func(p []float64) bool) (MutableEngine, error)
	// WriteTo serializes the engine in the versioned persistence format.
	WriteTo(w io.Writer) (int64, error)
}

// CloneQuery implements QueryEngine.
func (e *Engine) CloneQuery() QueryEngine { return e.Clone() }

// CloneQuery implements QueryEngine.
func (d *DynamicEngine) CloneQuery() QueryEngine { return d.Clone() }

// SetRefineWorkers overrides this view's intra-query parallel refinement
// width (n ≤ 1 restores the sequential loop) — the per-clone form of
// WithRefineWorkers, used by serving pools that arm clones after cloning.
// It affects only this view, never its siblings.
func (e *Engine) SetRefineWorkers(n int) { e.eng.SetWorkers(n) }

// SetRefineWorkers overrides this view's intra-query parallel refinement
// width; see Engine.SetRefineWorkers.
func (d *DynamicEngine) SetRefineWorkers(n int) { d.f.SetWorkers(n) }

// The two engines must keep satisfying the shared serving abstraction.
var (
	_ QueryEngine   = (*Engine)(nil)
	_ MutableEngine = (*DynamicEngine)(nil)
)
