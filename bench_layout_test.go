// Benchmarks contrasting the flat cache-conscious index layout against a
// faithful replica of the pointer-based layout it replaced:
//
//   - heap-allocated nodes linked by child pointers instead of one preorder
//     array with implicit left children,
//   - aggregate vectors allocated per node per sign class instead of packed
//     into one backing block,
//   - points kept in build order and gathered through an index permutation
//     at leaves instead of scanned contiguously,
//   - per-point kernel dispatch (Params.Eval's switch) instead of a
//     per-engine specialized range evaluator,
//   - a freshly allocated query context, priority queue and closure set per
//     query instead of reusable engine scratch.
//
// Both sides run the identical best-first refinement over the identical
// tree shape, so the measured gap is the cost of the memory layout and
// dispatch, not of the algorithm.
package karl

import (
	"testing"

	"karl/internal/bound"
	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/kernel"
	"karl/internal/pqueue"
	"karl/internal/vec"
)

// ptrNode is the replica's heap-allocated tree node.
type ptrNode struct {
	vol         geom.Volume
	start, end  int
	pos, neg    index.Agg
	left, right *ptrNode
}

// ptrEngine is the replica engine over the pointer layout.
type ptrEngine struct {
	root    *ptrNode
	points  *vec.Matrix // original (build-order) rows
	weights []float64
	idx     []int // leaf ranges gather through this permutation
	kern    kernel.Params
	method  bound.Method
}

// ptrFromTree rebuilds the pointer layout from a flat tree so both engines
// answer over the same structure: same volumes, same aggregates, same point
// partition — only the physical representation differs.
func ptrFromTree(t *index.Tree, kern kernel.Params) *ptrEngine {
	n := t.Len()
	orig := vec.NewMatrix(n, t.Dims())
	idx := make([]int, n)
	var w []float64
	if t.Weights != nil {
		w = make([]float64, n)
	}
	for pos := 0; pos < n; pos++ {
		id := int(t.PointID[pos])
		copy(orig.Row(id), t.Points.Row(pos))
		if w != nil {
			w[id] = t.Weights[pos]
		}
		idx[pos] = id
	}
	pe := &ptrEngine{points: orig, weights: w, idx: idx, kern: kern, method: bound.KARL}
	pe.root = pe.convert(t, 0)
	return pe
}

func (pe *ptrEngine) convert(t *index.Tree, ni int32) *ptrNode {
	fn := t.Node(ni)
	pn := &ptrNode{vol: fn.Vol, start: int(fn.Start), end: int(fn.End)}
	// One allocation per aggregate vector per node, as the old layout had.
	pn.pos = fn.Pos
	pn.pos.A = append([]float64(nil), fn.Pos.A...)
	pn.neg = fn.Neg
	pn.neg.A = append([]float64(nil), fn.Neg.A...)
	if !fn.IsLeaf() {
		pn.left = pe.convert(t, t.Left(ni))
		pn.right = pe.convert(t, fn.Right)
	}
	return pn
}

// leafValue evaluates a leaf the pre-flat way: gather each row through the
// permutation and dispatch the kernel switch once per point.
func (pe *ptrEngine) leafValue(q []float64, n *ptrNode) float64 {
	var s float64
	for pos := n.start; pos < n.end; pos++ {
		i := pe.idx[pos]
		v := pe.kern.Eval(q, pe.points.Row(i))
		if pe.weights != nil {
			v *= pe.weights[i]
		}
		s += v
	}
	return s
}

type ptrEntry struct {
	n      *ptrNode
	lb, ub float64
}

// threshold runs the TKAQ refinement loop with per-query allocations, the
// way the engine did before the scratch became reusable.
func (pe *ptrEngine) threshold(q []float64, tau float64) bool {
	qc := bound.NewQueryCtx(q)
	pq := &pqueue.Queue[ptrEntry]{}
	score := func(n *ptrNode) (lb, ub float64) {
		if n.left == nil {
			v := pe.leafValue(q, n)
			return v, v
		}
		lb, ub = bound.ClassBounds(pe.method, pe.kern, qc, n.vol, &n.pos)
		if n.neg.Count > 0 {
			lbN, ubN := bound.ClassBounds(pe.method, pe.kern, qc, n.vol, &n.neg)
			lb, ub = lb-ubN, ub-lbN
		}
		pq.Push(ptrEntry{n, lb, ub}, ub-lb)
		return lb, ub
	}
	lb, ub := score(pe.root)
	for !(lb > tau || ub <= tau) {
		en, _, ok := pq.Pop()
		if !ok {
			break
		}
		llb, lub := score(en.n.left)
		rlb, rub := score(en.n.right)
		lb += llb + rlb - en.lb
		ub += lub + rub - en.ub
	}
	return lb > tau
}

// benchLayoutSetup builds the leaf-heavy Gaussian Type I workload both
// layout benchmarks share: a borderline threshold (τ = 1.05 × exact) forces
// refinement deep into the tree, so leaf scans dominate.
func benchLayoutSetup(b *testing.B) (*Engine, *ptrEngine, []float64, float64) {
	b.Helper()
	pts, q := benchCloud(20000, 16)
	eng, err := Build(pts, Gaussian(20), WithIndex(KDTree, 40))
	if err != nil {
		b.Fatal(err)
	}
	exact, _ := eng.Aggregate(q)
	tau := exact * 1.05
	pe := ptrFromTree(eng.tree, eng.eng.Kernel())
	// Sanity: both layouts must give the same answer.
	flat, _ := eng.Threshold(q, tau)
	if ptr := pe.threshold(q, tau); ptr != flat {
		b.Fatalf("layouts disagree: flat %v, pointer %v", flat, ptr)
	}
	return eng, pe, q, tau
}

// BenchmarkRefineFlat measures TKAQ refinement over the flat layout.
func BenchmarkRefineFlat(b *testing.B) {
	eng, _, q, tau := benchLayoutSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Threshold(q, tau); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefinePointer measures the identical refinement over the
// pointer-layout replica.
func BenchmarkRefinePointer(b *testing.B) {
	_, pe, q, tau := benchLayoutSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe.threshold(q, tau)
	}
}
