module karl

go 1.22
