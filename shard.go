package karl

import (
	"fmt"

	"karl/internal/bound"
	"karl/internal/index"
	"karl/internal/shard"
	"karl/internal/vec"
)

// PartitionKind selects how Engine.Shard distributes points across shards.
// Kernel aggregation is additively decomposable — F_P(q) = Σ_S F_S(q) for
// any partition — so the choice affects balance and per-shard bound
// tightness, never correctness.
type PartitionKind int

const (
	// HashPartition assigns each point by a content hash of its
	// coordinates: statistically even, spatially mixed shards whose
	// assignment is stable across index rebuilds (the default).
	HashPartition PartitionKind = iota
	// KDPartition assigns points by recursive median splits on the widest
	// dimension: spatially compact shards, so localized queries leave most
	// shards' bounds tight after one refinement round.
	KDPartition
)

// String implements fmt.Stringer.
func (k PartitionKind) String() string {
	if k == KDPartition {
		return "kd"
	}
	return "hash"
}

// ShardMeta describes one shard of a partition: its cardinality and
// per-sign weight mass (W⁺ = Σ w_i over w_i > 0, W⁻ = Σ |w_i| over
// w_i < 0). The cluster coordinator allocates ε-budgets proportional to
// W⁺+W⁻ and uses the masses for worst-case reasoning about unreachable
// shards.
type ShardMeta struct {
	Points    int     `json:"points"`
	WeightPos float64 `json:"weight_pos"`
	WeightNeg float64 `json:"weight_neg,omitempty"`
}

// Weight returns the shard's total weight mass W_S = W⁺ + W⁻.
func (m ShardMeta) Weight() float64 { return m.WeightPos + m.WeightNeg }

// ShardManifest records how a dataset was partitioned: the strategy and
// the per-shard metadata, index-aligned with the shard engines.
type ShardManifest struct {
	Partition PartitionKind `json:"-"`
	Shards    []ShardMeta   `json:"shards"`
}

// ShardProvenance records that an engine indexes one shard of a larger
// partitioned dataset. It is persisted with the engine, so a shard file
// self-describes (cmd/karl-shard -inspect).
type ShardProvenance struct {
	// Index is this shard's position in the partition, in [0, Of).
	Index int
	// Of is the total number of shards.
	Of int
	// Partition is the strategy that produced the split.
	Partition PartitionKind
	// SourceLen is the full dataset's cardinality.
	SourceLen int
}

// WeightMass returns the engine's positive and negative weight mass:
// pos = Σ w_i over w_i ≥ 0 and neg = Σ |w_i| over w_i < 0. The total
// W = pos + neg is the normalization mass the coreset guarantees and the
// cluster layer's ε-budget allocation are stated against.
func (e *Engine) WeightMass() (pos, neg float64) {
	r := e.tree.Root()
	return r.Pos.W, r.Neg.W
}

// ShardInfo reports the engine's shard provenance. ok is false for
// engines that do not index a shard of a partitioned dataset.
func (e *Engine) ShardInfo() (info ShardProvenance, ok bool) {
	if e.shardProv == nil {
		return ShardProvenance{}, false
	}
	return *e.shardProv, true
}

// Shard partitions the engine's dataset into n shard engines, each
// indexing its slice with the same kernel, index structure, leaf capacity
// and bounding method, and each carrying ShardProvenance. The per-shard
// answers of Aggregate sum exactly to the original engine's (up to float
// summation order), which is what the cluster coordinator exploits.
func (e *Engine) Shard(n int, kind PartitionKind) ([]*Engine, *ShardManifest, error) {
	plan, err := shard.Partition(e.tree.Points, e.tree.Weights, n, shardKindOf(kind))
	if err != nil {
		return nil, nil, fmt.Errorf("karl: %w", err)
	}
	man := &ShardManifest{Partition: kind, Shards: make([]ShardMeta, n)}
	engines := make([]*Engine, n)
	for s, rows := range plan.Rows {
		sub := vec.NewMatrix(len(rows), e.tree.Dims())
		var w []float64
		if e.tree.Weights != nil {
			w = make([]float64, len(rows))
		}
		for i, r := range rows {
			copy(sub.Row(i), e.tree.Points.Row(r))
			if w != nil {
				w[i] = e.tree.Weights[r]
			}
		}
		cfg := defaultBuildConfig()
		cfg.weights = w
		cfg.kind = publicIndexKind(e.tree.Kind)
		cfg.leafCap = e.tree.LeafCap
		cfg.method = publicMethod(e.eng.Method())
		se, err := buildMatrixCfg(sub, e.kern, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("karl: shard %d: %w", s, err)
		}
		se.shardProv = &ShardProvenance{Index: s, Of: n, Partition: kind, SourceLen: e.Len()}
		engines[s] = se
		man.Shards[s] = ShardMeta{
			Points:    plan.Meta[s].Points,
			WeightPos: plan.Meta[s].WPos,
			WeightNeg: plan.Meta[s].WNeg,
		}
	}
	return engines, man, nil
}

// shardKindOf maps the public partition kind to the internal one.
func shardKindOf(k PartitionKind) shard.Kind {
	if k == KDPartition {
		return shard.KDSplit
	}
	return shard.Hash
}

// publicIndexKind is the inverse of indexKindOf.
func publicIndexKind(k index.Kind) IndexKind {
	switch k {
	case index.BallTree:
		return BallTree
	case index.VPTree:
		return VPTree
	default:
		return KDTree
	}
}

// publicMethod is the inverse of methodOf.
func publicMethod(m bound.Method) Method {
	if m == bound.SOTA {
		return MethodSOTA
	}
	return MethodKARL
}
