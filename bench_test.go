// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per artifact, per DESIGN.md §4), plus per-query
// micro-benchmarks contrasting SCAN, SOTA bounds and KARL bounds.
//
// The experiment benchmarks execute the full runner once per iteration at a
// reduced scale; run cmd/karl-bench for the paper-shaped printed output and
// larger sizes.
package karl

import (
	"math/rand"
	"testing"

	"karl/internal/experiments"
	"karl/internal/index"
	"karl/internal/tuning"
)

// benchConfig keeps each experiment iteration around a second or less.
func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:      1,
		MaxN:       4000,
		Queries:    48,
		TuneSample: 16,
		Seed:       1,
		Grid: []tuning.Candidate{
			{Kind: index.KDTree, LeafCap: 40},
			{Kind: index.BallTree, LeafCap: 80},
		},
		DimSweep: []int{8, 16, 32},
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1DensityMap regenerates Figure 1 (KDE surface, miniboone).
func BenchmarkFig1DensityMap(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig6BoundTrace regenerates Figure 6 (bound convergence traces).
func BenchmarkFig6BoundTrace(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7LeafCapacity regenerates Figure 7 (leaf-capacity sweep).
func BenchmarkFig7LeafCapacity(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkTable7Throughput regenerates Table VII (all methods × query
// types × datasets).
func BenchmarkTable7Throughput(b *testing.B) { runExperiment(b, "tab7") }

// BenchmarkFig9ThresholdSweep regenerates Figure 9 (τ sensitivity).
func BenchmarkFig9ThresholdSweep(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10EpsilonSweep regenerates Figure 10 (ε sensitivity).
func BenchmarkFig10EpsilonSweep(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11SizeSweep regenerates Figure 11 (dataset-size sweep).
func BenchmarkFig11SizeSweep(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12DimSweep regenerates Figure 12 (PCA dimensionality sweep).
func BenchmarkFig12DimSweep(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13Tightness regenerates Figure 13 (bound tightness).
func BenchmarkFig13Tightness(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkTable8OfflineTuning regenerates Table VIII (offline tuning).
func BenchmarkTable8OfflineTuning(b *testing.B) { runExperiment(b, "tab8") }

// BenchmarkTable9InSitu regenerates Table IX (in-situ end-to-end).
func BenchmarkTable9InSitu(b *testing.B) { runExperiment(b, "tab9") }

// BenchmarkTable10Polynomial regenerates Table X (polynomial kernel).
func BenchmarkTable10Polynomial(b *testing.B) { runExperiment(b, "tab10") }

// --- per-query micro-benchmarks -----------------------------------------

// benchCloud builds a clustered dataset plus one query.
func benchCloud(n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(99))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		base := float64(i%5) * 0.18
		for j := range pts[i] {
			pts[i][j] = base + rng.NormFloat64()*0.04
		}
	}
	q := make([]float64, d)
	for j := range q {
		q[j] = 0.2 + rng.Float64()*0.2
	}
	return pts, q
}

// BenchmarkQueryKARLThreshold measures one TKAQ with KARL bounds.
func BenchmarkQueryKARLThreshold(b *testing.B) {
	pts, q := benchCloud(20000, 8)
	eng, err := Build(pts, Gaussian(20))
	if err != nil {
		b.Fatal(err)
	}
	exact, _ := eng.Aggregate(q)
	tau := exact * 1.05
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Threshold(q, tau); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuerySOTAThreshold measures the same TKAQ with SOTA bounds.
func BenchmarkQuerySOTAThreshold(b *testing.B) {
	pts, q := benchCloud(20000, 8)
	eng, err := Build(pts, Gaussian(20), WithMethod(MethodSOTA))
	if err != nil {
		b.Fatal(err)
	}
	exact, _ := eng.Aggregate(q)
	tau := exact * 1.05
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Threshold(q, tau); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryScan measures the unpruned exact aggregation.
func BenchmarkQueryScan(b *testing.B) {
	pts, q := benchCloud(20000, 8)
	eng, err := Build(pts, Gaussian(20))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Aggregate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryKARLApproximate measures one eKAQ (ε = 0.2).
func BenchmarkQueryKARLApproximate(b *testing.B) {
	pts, q := benchCloud(20000, 8)
	eng, err := Build(pts, Gaussian(20))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Approximate(q, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildKDTree measures index construction, the cost the in-situ
// scenario pays per epoch.
func BenchmarkBuildKDTree(b *testing.B) {
	pts, _ := benchCloud(20000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts, Gaussian(20), WithIndex(KDTree, 80)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildBallTree measures ball-tree construction.
func BenchmarkBuildBallTree(b *testing.B) {
	pts, _ := benchCloud(20000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts, Gaussian(20), WithIndex(BallTree, 80)); err != nil {
			b.Fatal(err)
		}
	}
}
