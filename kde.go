package karl

import (
	"errors"

	"karl/internal/kde"
	"karl/internal/vec"
)

// KDE is a kernel density estimator accelerated by KARL: density queries
// are eKAQ, density classification ("is this region dense?") is TKAQ.
type KDE struct {
	eng *Engine
	// n normalizes the aggregate into a density (weight 1/n).
	n float64
}

// NewKDE builds a Gaussian KDE over the points with Scott's-rule bandwidth
// (the paper's Type I setting). Options other than WithWeights apply;
// weights are fixed at the Type I common weight.
func NewKDE(points [][]float64, opts ...Option) (*KDE, error) {
	if len(points) == 0 {
		return nil, errors.New("karl: empty point set")
	}
	m := vec.FromRows(points)
	gamma, err := kde.ScottGamma(m)
	if err != nil {
		return nil, err
	}
	return NewKDEWithGamma(points, gamma, opts...)
}

// NewKDEWithGamma builds a Gaussian KDE with an explicit smoothing γ.
func NewKDEWithGamma(points [][]float64, gamma float64, opts ...Option) (*KDE, error) {
	eng, err := Build(points, Gaussian(gamma), opts...)
	if err != nil {
		return nil, err
	}
	return &KDE{eng: eng, n: float64(len(points))}, nil
}

// Gamma returns the estimator's smoothing parameter.
func (k *KDE) Gamma() float64 { return k.eng.Kernel().Gamma }

// Engine exposes the underlying query engine (thresholds there are in
// aggregate units, i.e. density × n).
func (k *KDE) Engine() *Engine { return k.eng }

// Density returns the density estimate at q within relative error eps.
func (k *KDE) Density(q []float64, eps float64) (float64, error) {
	v, err := k.eng.Approximate(q, eps)
	if err != nil {
		return 0, err
	}
	return v / k.n, nil
}

// DensityExceeds reports whether the density at q exceeds the threshold —
// the kernel density classification TKAQ of Gan & Bailis, served with
// KARL's bounds.
func (k *KDE) DensityExceeds(q []float64, density float64) (bool, error) {
	return k.eng.Threshold(q, density*k.n)
}
