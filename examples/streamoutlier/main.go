// Streaming outlier detection over a drifting baseline — the mutable
// half of the paper's network-intrusion scenario. Instead of a model
// trained once on frozen "normal" traffic, a segmented dynamic engine
// holds a sliding window of recent observations as a kernel density
// estimate: every new connection is screened against the current window
// (a threshold kernel aggregation query), then inserted so the baseline
// tracks drift. A TTL window expires stale observations at seal and
// compaction time, an exponential decay half-life down-weights older
// points so the density leans toward the freshest traffic, and labeled
// false positives can be deleted outright — tombstones subtract their
// mass exactly until compaction reclaims the rows.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"karl"
)

// connection synthesizes a feature vector of "network traffic" whose
// normal profile drifts over time: the cluster center slides, so a
// frozen baseline would decay into false positives.
func connection(rng *rand.Rand, center float64, attack bool) []float64 {
	v := make([]float64, 8)
	for j := range v {
		v[j] = center + rng.NormFloat64()*0.05
	}
	if attack {
		dim := rng.Intn(len(v))
		v[dim] += 0.5 + rng.Float64() // one feature goes far out of profile
	}
	return v
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// The streaming baseline: a mutable KDE over a 10-minute window of
	// traffic, with a 3-minute half-life so the last few minutes dominate
	// the density. Insert-heavy workloads seal and compact off the query
	// path; neither screening nor ingest ever waits on a rebuild.
	baseline, err := karl.NewDynamic(karl.Gaussian(20),
		karl.WithTTL(10*time.Minute),
		karl.WithDecayHalfLife(3*time.Minute),
		karl.WithSealSize(512),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Seed with the first minutes of (normal) traffic.
	for i := 0; i < 2000; i++ {
		if err := baseline.Insert(connection(rng, 0.5, false), 1); err != nil {
			log.Fatal(err)
		}
	}

	// A connection is flagged when the window's density at its feature
	// vector falls below tau: too far from everything recently seen.
	// Threshold queries terminate on the paper's bound certificates, so
	// most decisions touch a handful of tree nodes.
	const tau = 25.0

	var flagged, attacks, caught int
	var falsePositives []uint64
	center := 0.5
	for i := 0; i < 4000; i++ {
		center += 0.0001 // the normal profile drifts
		attack := rng.Float64() < 0.02
		c := connection(rng, center, attack)
		if attack {
			attacks++
		}

		over, err := baseline.Threshold(c, tau)
		if err != nil {
			log.Fatal(err)
		}
		if !over { // low density: outlier
			flagged++
			if attack {
				caught++
			}
			// Attacks must not poison the baseline; suspicious points are
			// held out. (A real pipeline would insert them on acquittal.)
			continue
		}

		// Normal traffic joins the window and the baseline keeps drifting
		// with the stream. Remember some IDs to demonstrate deletion below.
		id, err := baseline.InsertID(c, 1)
		if err != nil {
			log.Fatal(err)
		}
		if i%500 == 0 {
			falsePositives = append(falsePositives, id)
		}
	}

	fmt.Printf("screened 4000 connections against a drifting baseline of %d points\n", baseline.Len())
	fmt.Printf("flagged %d (%d/%d attacks caught)\n", flagged, caught, attacks)

	// An analyst overturns some admissions: delete them. Sealed points
	// become tombstones whose kernel mass is subtracted exactly from every
	// query until compaction drops the rows for good.
	for _, id := range falsePositives {
		if err := baseline.Delete(id); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("retracted %d points (%d tombstones pending compaction)\n",
		len(falsePositives), baseline.Tombstones())
	if err := baseline.Compact(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after compaction: %d points, %d tombstones, %d segments\n",
		baseline.Len(), baseline.Tombstones(), len(baseline.Segments()))
}
