// Kernel regression (Nadaraya–Watson) served by KARL — the paper's
// conclusion names kernel regression as a future direction; here each
// prediction is a ratio of two approximate kernel aggregation queries.
// The scenario: predict household power draw from time-of-day and
// temperature, learned from noisy observations.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"karl"
)

// demand is the ground-truth function: a morning and an evening peak,
// modulated by temperature.
func demand(hour, temp float64) float64 {
	morning := math.Exp(-(hour - 8) * (hour - 8) / 4)
	evening := 1.4 * math.Exp(-(hour-19)*(hour-19)/6)
	heating := math.Max(0, 18-temp) * 0.05
	return 1 + morning + evening + heating
}

func main() {
	rng := rand.New(rand.NewSource(17))

	// Observations: (hour, temp) → kW, with sensor noise.
	const n = 30000
	points := make([][]float64, n)
	targets := make([]float64, n)
	for i := range points {
		h := rng.Float64() * 24
		temp := 5 + rng.Float64()*25
		points[i] = []float64{h / 24, temp / 30} // normalize features
		targets[i] = demand(h, temp) + rng.NormFloat64()*0.1
	}

	reg, err := karl.NewRegression(points, targets, 800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel regression over %d observations\n\n", n)
	fmt.Printf("%6s %6s %10s %10s %10s\n", "hour", "temp", "truth", "exact", "eKAQ±5%")

	var maxErr float64
	cases := []struct{ hour, temp float64 }{
		{8, 10}, {12, 20}, {19, 8}, {23, 15}, {3, 25},
	}
	for _, c := range cases {
		q := []float64{c.hour / 24, c.temp / 30}
		exact, err := reg.PredictExact(q)
		if err != nil {
			log.Fatal(err)
		}
		fast, err := reg.Predict(q, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		truth := demand(c.hour, c.temp)
		fmt.Printf("%6.1f %6.1f %10.3f %10.3f %10.3f\n", c.hour, c.temp, truth, exact, fast)
		if e := math.Abs(exact - truth); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("\nmax |exact − truth| over the probes: %.3f kW\n", maxErr)
}
