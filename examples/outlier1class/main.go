// Outlier detection with a 1-class SVM (Type II weighting), the paper's
// network-intrusion scenario: train on normal traffic only, then screen a
// stream of mixed traffic. Every screening decision is a threshold kernel
// aggregation query over the support vectors, served by KARL's bounds.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"karl"
)

// connection synthesizes a feature vector of "network traffic": normal
// traffic is tightly clustered, attacks drift far from the cluster.
func connection(rng *rand.Rand, attack bool) []float64 {
	v := make([]float64, 8)
	for j := range v {
		v[j] = 0.5 + rng.NormFloat64()*0.05
	}
	if attack {
		dim := rng.Intn(len(v))
		v[dim] += 0.5 + rng.Float64() // one feature goes far out of profile
	}
	return v
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// Train on 2000 normal connections only.
	train := make([][]float64, 2000)
	for i := range train {
		train[i] = connection(rng, false)
	}
	model, err := karl.TrainOneClassSVM(train, karl.SVMConfig{
		Kernel: karl.Gaussian(20),
		Nu:     0.05, // allow ~5% of training data outside the boundary
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained 1-class SVM: %d support vectors, rho=%.4f\n",
		model.SupportVectors, model.Rho)

	// Screen a live stream with 10% attacks.
	const streamLen = 2000
	var tp, fp, fn, tn int
	for i := 0; i < streamLen; i++ {
		isAttack := rng.Float64() < 0.10
		inlier, err := model.Classify(connection(rng, isAttack))
		if err != nil {
			log.Fatal(err)
		}
		flagged := !inlier
		switch {
		case isAttack && flagged:
			tp++
		case isAttack && !flagged:
			fn++
		case !isAttack && flagged:
			fp++
		default:
			tn++
		}
	}
	fmt.Printf("screened %d connections\n", streamLen)
	fmt.Printf("  attacks caught:   %d/%d (%.1f%% recall)\n", tp, tp+fn, 100*float64(tp)/float64(tp+fn))
	fmt.Printf("  false alarms:     %d/%d (%.1f%% of normal traffic)\n", fp, fp+tn, 100*float64(fp)/float64(fp+tn))
}
