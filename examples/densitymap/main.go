// Density mapping (the paper's Figure 1 scenario): estimate a kernel
// density surface over two dimensions of a dataset and locate the dense
// region, using Scott's-rule bandwidth and eKAQ queries for every grid
// cell. Physicists use exactly this to hunt for particles in the
// miniboone data; here the "signal" is a synthetic dense cluster.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"karl"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Background events everywhere, a signal cluster near (0.7, 0.3).
	const n = 20000
	points := make([][]float64, n)
	for i := range points {
		if i%5 == 0 { // 20% signal
			points[i] = []float64{0.7 + rng.NormFloat64()*0.03, 0.3 + rng.NormFloat64()*0.03}
		} else {
			points[i] = []float64{rng.Float64(), rng.Float64()}
		}
	}

	est, err := karl.NewKDE(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KDE over %d events, Scott gamma = %.1f\n", n, est.Gamma())

	// Render a 30×30 density grid with ±10% eKAQ queries.
	const res = 30
	grid := make([]float64, res*res)
	var peak float64
	var peakX, peakY float64
	for iy := 0; iy < res; iy++ {
		for ix := 0; ix < res; ix++ {
			q := []float64{float64(ix) / (res - 1), float64(iy) / (res - 1)}
			d, err := est.Density(q, 0.1)
			if err != nil {
				log.Fatal(err)
			}
			grid[iy*res+ix] = d
			if d > peak {
				peak, peakX, peakY = d, q[0], q[1]
			}
		}
	}

	shades := []byte(" .:-=+*#%@")
	for iy := res - 1; iy >= 0; iy-- {
		line := make([]byte, res)
		for ix := 0; ix < res; ix++ {
			line[ix] = shades[int(grid[iy*res+ix]/peak*float64(len(shades)-1))]
		}
		fmt.Printf("%s\n", line)
	}
	fmt.Printf("densest cell at (%.2f, %.2f), density %.4g\n", peakX, peakY, peak)

	// Density classification: which cells clear half the peak (TKAQ)?
	var hot int
	for iy := 0; iy < res; iy++ {
		for ix := 0; ix < res; ix++ {
			q := []float64{float64(ix) / (res - 1), float64(iy) / (res - 1)}
			over, err := est.DensityExceeds(q, peak/2)
			if err != nil {
				log.Fatal(err)
			}
			if over {
				hot++
			}
		}
	}
	fmt.Printf("%d of %d cells exceed half the peak density\n", hot, res*res)
}
