// Quickstart: index a weighted point set and run the two query types of
// the paper — threshold (TKAQ) and approximate (eKAQ) kernel aggregation —
// then peek at the pruning statistics that explain KARL's speedups.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"karl"
)

func main() {
	// A clustered dataset: three blobs in [0,1]².
	rng := rand.New(rand.NewSource(42))
	const n = 10000
	points := make([][]float64, n)
	for i := range points {
		cx, cy := 0.2, 0.2
		switch i % 3 {
		case 1:
			cx, cy = 0.8, 0.3
		case 2:
			cx, cy = 0.5, 0.8
		}
		points[i] = []float64{cx + rng.NormFloat64()*0.05, cy + rng.NormFloat64()*0.05}
	}

	// Build a KARL engine with a Gaussian kernel.
	eng, err := karl.Build(points, karl.Gaussian(50))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d points in %d dimensions\n", eng.Len(), eng.Dims())

	q := []float64{0.21, 0.19} // inside the first blob

	// Exact aggregation (reference).
	exact, err := eng.Aggregate(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact F(q)       = %.2f\n", exact)

	// TKAQ: is the aggregate above a threshold? KARL answers without
	// computing F exactly — see how few points it touches.
	over, stats, err := eng.ThresholdStats(q, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F(q) > 1000      = %v  (scanned %d of %d points, %d iterations)\n",
		over, stats.PointsScanned, eng.Len(), stats.Iterations)

	// eKAQ: approximate F within ±5%.
	approx, stats, err := eng.ApproximateStats(q, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F(q) ± 5%%        = %.2f (true error %.2f%%, scanned %d points)\n",
		approx, 100*abs(approx-exact)/exact, stats.PointsScanned)

	// The same queries with the prior state-of-the-art bounds touch far
	// more of the tree.
	sota, err := karl.Build(points, karl.Gaussian(50), karl.WithMethod(karl.MethodSOTA))
	if err != nil {
		log.Fatal(err)
	}
	_, sotaStats, err := sota.ThresholdStats(q, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SOTA bounds used %d iterations for the same TKAQ (KARL: %d)\n",
		sotaStats.Iterations, statsIter(eng, q))
}

func statsIter(eng *karl.Engine, q []float64) int {
	_, st, _ := eng.ThresholdStats(q, 1000)
	return st.Iterations
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
