// Binary classification with a 2-class kernel SVM (Type III weighting):
// train on labelled data, then predict with KARL-accelerated TKAQ. The
// mixed-sign weights α_i·y_i exercise the P⁺/P⁻ bound decomposition of
// Section IV-A.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"karl"
)

// ring labels points by whether they fall inside an annulus — a problem a
// linear classifier cannot solve, so the kernel matters.
func ring(rng *rand.Rand) ([]float64, float64) {
	x := rng.NormFloat64()
	y := rng.NormFloat64()
	r := math.Hypot(x, y)
	label := -1.0
	if r > 0.8 && r < 1.6 {
		label = 1
	}
	return []float64{x, y}, label
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// Training set.
	const nTrain = 1500
	points := make([][]float64, 0, nTrain)
	labels := make([]float64, 0, nTrain)
	for len(points) < nTrain {
		p, l := ring(rng)
		points = append(points, p)
		labels = append(labels, l)
	}

	model, err := karl.TrainTwoClassSVM(points, labels, karl.SVMConfig{
		Kernel: karl.Gaussian(2),
		C:      5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained 2-class SVM: %d support vectors, rho=%.4f\n",
		model.SupportVectors, model.Rho)

	// Held-out evaluation: every prediction is one TKAQ.
	const nTest = 2000
	var correct int
	for i := 0; i < nTest; i++ {
		p, l := ring(rng)
		positive, err := model.Classify(p)
		if err != nil {
			log.Fatal(err)
		}
		if positive == (l > 0) {
			correct++
		}
	}
	fmt.Printf("held-out accuracy: %.2f%% on %d queries\n",
		100*float64(correct)/float64(nTest), nTest)

	// The decision value is the margin; show a few.
	for _, q := range [][]float64{{0, 0}, {1.2, 0}, {3, 0}} {
		d, err := model.Decision(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  decision(%v) = %+.3f\n", q, d)
	}
}
