// In-situ tuning (Section III-C / Table IX): an online kernel learning
// loop where the point set changes between query batches, so index
// construction and tuning time count toward end-to-end latency. KARL
// builds a single kd-tree per epoch and picks the best simulated tree
// height from a small sample of the live stream.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"karl"
)

func batch(rng *rand.Rand, n, d int, drift float64) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		base := drift + float64(i%4)*0.2
		for j := range pts[i] {
			pts[i][j] = base + rng.NormFloat64()*0.04
		}
	}
	return pts
}

func main() {
	rng := rand.New(rand.NewSource(5))
	const (
		d       = 6
		nPoints = 8000
		nQuery  = 400
		epochs  = 4
	)
	fmt.Println("online kernel learning: the model drifts every epoch,")
	fmt.Println("so each epoch pays for build + tune + queries end-to-end")
	fmt.Println()

	for epoch := 0; epoch < epochs; epoch++ {
		drift := float64(epoch) * 0.05
		points := batch(rng, nPoints, d, drift)
		queries := batch(rng, nQuery, d, drift)
		w := karl.Workload{Threshold: true, Tau: 40}

		start := time.Now()
		rep, err := karl.InSitu(points, karl.Gaussian(25), w, queries, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %d queries end-to-end in %v → %.0f q/s (tuned depth %d)\n",
			epoch, nQuery, time.Since(start).Round(time.Millisecond),
			rep.Throughput, rep.ChosenDepth)

		// Contrast with a plain scan over the same epoch.
		scanStart := time.Now()
		eng, err := karl.Build(points, karl.Gaussian(25), karl.WithIndex(karl.KDTree, len(points)))
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range queries {
			if _, err := eng.Aggregate(q); err != nil {
				log.Fatal(err)
			}
		}
		scanRate := float64(nQuery) / time.Since(scanStart).Seconds()
		fmt.Printf("         scan baseline: %.0f q/s (%.1fx slower)\n",
			scanRate, rep.Throughput/scanRate)
	}
}
