package karl

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// weightsFor draws a weight vector for one of the paper's three weighting
// types: Type I (unit), Type II (positive, varied), Type III (mixed sign).
func weightsFor(rng *rand.Rand, typ string, n int) []float64 {
	switch typ {
	case "typeI":
		return nil // unit weights
	case "typeII":
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.1 + rng.Float64()
		}
		return w
	case "typeIII":
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		return w
	}
	panic("unknown weight type " + typ)
}

// TestSegmentedEquivalenceGate is the PR's acceptance gate: across every
// index kind, weighting type, and kernel, a segmented engine (multiple
// sealed segments plus a live memtable) must answer like a monolithic
// build — Aggregate within floating-point reordering tolerance, Threshold
// identically away from ties, Approximate within its ε contract — and
// after a full Compact() the single merged segment must answer Aggregate
// bitwise-identically to the monolithic engine.
func TestSegmentedEquivalenceGate(t *testing.T) {
	kinds := []IndexKind{KDTree, BallTree, VPTree}
	kernels := map[string]func() Kernel{
		"gaussian":     func() Kernel { return Gaussian(4) },
		"epanechnikov": func() Kernel { return Epanechnikov(2) },
		"quartic":      func() Kernel { return Quartic(2) },
	}
	weightTypes := []string{"typeI", "typeII", "typeIII"}
	const n = 600

	for _, kind := range kinds {
		for kname, mk := range kernels {
			for _, wt := range weightTypes {
				name := map[IndexKind]string{KDTree: "kd", BallTree: "ball", VPTree: "vp"}[kind] +
					"/" + kname + "/" + wt
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(len(name))*31 + 7))
					pts := cloud(rng, n, 2)
					ws := weightsFor(rng, wt, n)

					// Small seals force a genuinely multi-segment manifest
					// with compactions along the way.
					d, err := NewDynamic(mk(), WithIndex(kind, 16),
						WithSealSize(64), WithCompactionFanout(2))
					if err != nil {
						t.Fatal(err)
					}
					for i, p := range pts {
						w := 1.0
						if ws != nil {
							w = ws[i]
						}
						if err := d.Insert(p, w); err != nil {
							t.Fatal(err)
						}
					}
					var opts []Option
					opts = append(opts, WithIndex(kind, 16))
					if ws != nil {
						opts = append(opts, WithWeights(ws))
					}
					mono, err := Build(pts, mk(), opts...)
					if err != nil {
						t.Fatal(err)
					}
					if len(d.Segments()) < 2 {
						t.Fatalf("only %d segments; gate needs a multi-segment manifest", len(d.Segments()))
					}

					queries := cloud(rng, 20, 2)
					for _, q := range queries {
						want, err := mono.Aggregate(q)
						if err != nil {
							t.Fatal(err)
						}
						got, err := d.Aggregate(q)
						if err != nil {
							t.Fatal(err)
						}
						if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
							t.Fatalf("multi-segment Aggregate %v want %v", got, want)
						}
						// Threshold, away from the tie at tau == F(q).
						for _, tau := range []float64{want - 0.01 - math.Abs(want)*0.05, want + 0.01 + math.Abs(want)*0.05} {
							wantTh, err := mono.Threshold(q, tau)
							if err != nil {
								t.Fatal(err)
							}
							gotTh, err := d.Threshold(q, tau)
							if err != nil {
								t.Fatal(err)
							}
							if gotTh != wantTh {
								t.Fatalf("Threshold(%v, %v) = %v want %v", q, tau, gotTh, wantTh)
							}
						}
						// Approximate: ε relative to |F(q)| (the mixed-sign
						// contract); skip queries where F(q) ~ 0 — the
						// dedicated cancellation test covers those.
						if math.Abs(want) > 1e-6 {
							approx, err := d.Approximate(q, 0.1)
							if err != nil {
								t.Fatal(err)
							}
							if math.Abs(approx-want) > 0.1*math.Abs(want)+1e-9 {
								t.Fatalf("Approximate %v want %v ± 10%%", approx, want)
							}
						}
					}

					// After a full compaction the merged segment restores
					// insertion order, so the tree — and therefore every
					// refinement step — is bitwise identical to the
					// monolithic build.
					if err := d.Compact(); err != nil {
						t.Fatal(err)
					}
					if segs := d.Segments(); len(segs) != 1 {
						t.Fatalf("Compact left %d segments", len(segs))
					}
					for _, q := range queries {
						want, _ := mono.Aggregate(q)
						got, err := d.Aggregate(q)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("post-Compact Aggregate %v not bitwise-equal to monolithic %v", got, want)
						}
						wantTh, _ := mono.Threshold(q, want*0.9)
						gotTh, err := d.Threshold(q, want*0.9)
						if err != nil {
							t.Fatal(err)
						}
						if gotTh != wantTh {
							t.Fatal("post-Compact Threshold disagrees")
						}
					}
				})
			}
		}
	}
}

// TestDynamicApproximateMixedSignCancellation pins the ε contract where
// it is hardest: sealed segments carry positive mass, the live memtable
// carries nearly cancelling negative mass, so the true total is tiny
// relative to either side. The answer must still land within ε·|F(q)| —
// an engine that bounded error against per-segment partial sums instead
// of the true total would fail this by orders of magnitude.
func TestDynamicApproximateMixedSignCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d, err := NewDynamic(Gaussian(3), WithSealSize(128), WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	var pts [][]float64
	var ws []float64
	// 512 positive points → four sealed segments.
	for i := 0; i < 512; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		pts, ws = append(pts, p), append(ws, 1)
		if err := d.Insert(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	if d.Seals() == 0 {
		t.Fatal("setup: no sealed segments")
	}
	// ~100 heavy negative points in the memtable nearly cancel the sealed
	// mass around the query region.
	for i := 0; i < 100; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		pts, ws = append(pts, p), append(ws, -5.05)
		if err := d.Insert(p, -5.05); err != nil {
			t.Fatal(err)
		}
	}
	mono, err := Build(pts, Gaussian(3), WithWeights(ws))
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 30; qi++ {
		q := []float64{rng.Float64(), rng.Float64()}
		exact, _ := mono.Aggregate(q)
		got, err := d.Approximate(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-exact) > 0.1*math.Abs(exact)+1e-9 {
			t.Fatalf("q %d: Approximate %v, exact %v — error %.3g exceeds 10%% of |true total| %.3g",
				qi, got, exact, math.Abs(got-exact), math.Abs(exact))
		}
	}
}

// TestDynamicInsertSteadyStateZeroAlloc: between seals an insert is an
// append into preallocated memtable storage — zero heap allocations. The
// rotating spare buffer makes this true in steady state (after the first
// seal), not just before it.
func TestDynamicInsertSteadyStateZeroAlloc(t *testing.T) {
	d, err := NewDynamic(Gaussian(2), WithSealSize(512), WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.5, 0.5}
	// Warm past the first seal so the spare buffer exists and the
	// memtable is the recycled one.
	for i := 0; i < 520; i++ {
		if err := d.Insert(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	if d.Seals() != 1 {
		t.Fatalf("warmup sealed %d times, want 1", d.Seals())
	}
	// 100 measured inserts stay well below the next seal boundary.
	allocs := testing.AllocsPerRun(100, func() {
		if err := d.Insert(p, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Insert allocates %v objects/op, want 0", allocs)
	}
}

// TestDynamicConcurrentInsertQueryOracle runs queries against an exact
// oracle while a writer streams inserts: with positive weights, F(q) is
// monotone in the prefix of inserted points, so every answer must land
// between the prefix sum at query start and the prefix sum just after
// query end. Runs in -short mode so CI's -race step covers it.
func TestDynamicConcurrentInsertQueryOracle(t *testing.T) {
	const n = 3000
	rng := rand.New(rand.NewSource(91))
	pts := cloud(rng, n, 2)
	q := []float64{0.5, 0.5}
	kern := Gaussian(4)

	// prefix[k] = F(q) over the first k inserted points, computed directly
	// from the Gaussian closed form.
	prefix := make([]float64, n+1)
	for i, p := range pts {
		dx, dy := p[0]-q[0], p[1]-q[1]
		prefix[i+1] = prefix[i] + math.Exp(-4*(dx*dx+dy*dy))
	}

	d, err := NewDynamic(kern, WithSealSize(64), WithCompactionFanout(2))
	if err != nil {
		t.Fatal(err)
	}
	var inserted atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range pts {
			if err := d.Insert(p, 1); err != nil {
				t.Error(err)
				return
			}
			inserted.Add(1)
		}
	}()

	// Each querier gets its own clone: clones share the dataset and
	// manifest but own their refinement state, which is the concurrency
	// unit for queries (the server pool works the same way).
	const queriers = 3
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := d.Clone()
			for {
				lo := inserted.Load()
				if lo == 0 {
					continue // engine may still be empty
				}
				v, err := c.Aggregate(q)
				if err != nil {
					t.Error(err)
					return
				}
				hi := inserted.Load() + 1 // one insert may be in flight
				if hi > n {
					hi = n
				}
				tol := 1e-9 * (1 + prefix[n])
				if v < prefix[lo]-tol || v > prefix[hi]+tol {
					t.Errorf("Aggregate %v outside oracle window [%v, %v] (lo=%d hi=%d)",
						v, prefix[lo], prefix[hi], lo, hi)
					return
				}
				if lo == n {
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := d.Len(); got != n {
		t.Fatalf("Len = %d want %d", got, n)
	}
	v, err := d.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-prefix[n]) > 1e-9*(1+prefix[n]) {
		t.Fatalf("final Aggregate %v want %v", v, prefix[n])
	}
}

// TestNoStopTheWorldCompaction asserts the PR's core serving property:
// sustained inserts — with the sealing and background compaction they
// trigger — must not stall queries. Query p99 under write load stays
// within 3× the insert-free p99 (plus a small absolute noise floor for
// scheduler jitter on loaded CI machines).
func TestNoStopTheWorldCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("latency assertion is meaningless under -short/-race")
	}
	rng := rand.New(rand.NewSource(101))
	pts := cloud(rng, 10000, 3)
	d, err := NewDynamic(Gaussian(6), WithSealSize(256), WithCompactionFanout(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:6000] {
		if err := d.Insert(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	queries := cloud(rng, 800, 3)
	measure := func() time.Duration {
		lat := make([]time.Duration, 0, len(queries))
		for _, q := range queries {
			start := time.Now()
			if _, err := d.Approximate(q, 0.1); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*99/100]
	}

	baseline := measure()

	// The writer streams the remaining 4000 points (bounded growth, so a
	// slower live p99 means stalls, not just a larger dataset), triggering
	// seals and background compactions throughout the live measurement.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range pts[6000:] {
			select {
			case <-stop:
				return
			default:
			}
			if err := d.Insert(p, 1); err != nil {
				t.Error(err)
				return
			}
			runtime.Gosched() // interleave with the measuring goroutine
		}
	}()
	live := measure()
	close(stop)
	wg.Wait()

	limit := 3*baseline + 2*time.Millisecond
	t.Logf("query p99: baseline %v, under sustained inserts %v (limit %v)", baseline, live, limit)
	if live > limit {
		t.Fatalf("stop-the-world detected: p99 under inserts %v exceeds %v (3× baseline %v + noise floor)",
			live, limit, baseline)
	}
}
