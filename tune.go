package karl

import (
	"errors"

	"karl/internal/core"
	"karl/internal/index"
	"karl/internal/tuning"
	"karl/internal/vec"
)

// Workload describes the query mix an index should be tuned for.
type Workload struct {
	// Threshold, when true, tunes for TKAQ with threshold Tau; otherwise
	// for eKAQ with relative error Eps.
	Threshold bool
	Tau       float64
	Eps       float64
}

func (w Workload) internal(kern Kernel, m Method) tuning.Workload {
	tw := tuning.Workload{Kernel: kern, Method: methodOf(m)}
	if w.Threshold {
		tw.Mode = tuning.Threshold
		tw.Tau = w.Tau
	} else {
		tw.Mode = tuning.Approximate
		tw.Eps = w.Eps
	}
	return tw
}

// TuneReport describes the configuration BuildAuto selected.
type TuneReport struct {
	Kind IndexKind
	// LeafCap is the selected leaf capacity.
	LeafCap int
	// SampleThroughput is the winner's measured queries/sec on the sample.
	SampleThroughput float64
}

// BuildAuto implements the paper's offline automatic tuning (Section
// III-C): it builds each candidate index in the default grid ({kd-tree,
// ball-tree} × {10..640}), measures throughput on the sample queries, and
// returns an engine over the winner. The sample should be ~1000 queries
// drawn like the live workload.
func BuildAuto(points [][]float64, kern Kernel, w Workload, sample [][]float64, opts ...Option) (*Engine, *TuneReport, error) {
	if len(points) == 0 {
		return nil, nil, errors.New("karl: empty point set")
	}
	if len(sample) == 0 {
		return nil, nil, errors.New("karl: empty tuning sample")
	}
	cfg := buildConfig{method: MethodKARL}
	for _, opt := range opts {
		opt(&cfg)
	}
	results, err := tuning.Offline(vec.FromRows(points), cfg.weights,
		w.internal(kern, cfg.method), vec.FromRows(sample), nil)
	if err != nil {
		return nil, nil, err
	}
	winner := results[0]
	eng, err := core.New(winner.Tree, kern, core.WithMethod(methodOf(cfg.method)))
	if err != nil {
		return nil, nil, err
	}
	kind := KDTree
	if winner.Candidate.Kind == index.BallTree {
		kind = BallTree
	}
	return &Engine{eng: eng, tree: winner.Tree, kern: kern, batchExec: cfg.batchExec, dualCtr: &dualCounters{}}, &TuneReport{
		Kind:             kind,
		LeafCap:          winner.Candidate.LeafCap,
		SampleThroughput: winner.Throughput,
	}, nil
}

// DynamicTuneReport describes the maintenance policy TuneDynamic
// selected for a mutable workload.
type DynamicTuneReport struct {
	// SealSize and Fanout are the winning policy knobs (see WithSealSize
	// and WithCompactionFanout).
	SealSize int
	Fanout   int
	// Throughput is the winner's measured operations/sec (inserts plus
	// queries) on the replayed trace.
	Throughput float64
}

// TuneDynamic sweeps the segmented engine's maintenance policy — seal
// size and compaction fanout — by replaying the same mixed insert/query
// trace against each candidate and returns a fresh engine built with the
// winning policy plus the ranked report. The trace interleaves
// queriesPerInsert sample queries behind every inserted point, so the
// measured cost includes sealing and compaction exactly where a live
// workload would pay them (queriesPerInsert 9 models a 90/10
// query/insert mix). The returned engine is empty and ready for live
// traffic; extra opts (index kind, leaf capacity, method) apply to every
// candidate and to the returned engine.
func TuneDynamic(points [][]float64, kern Kernel, w Workload, sample [][]float64, queriesPerInsert int, opts ...Option) (*DynamicEngine, *DynamicTuneReport, error) {
	if len(points) == 0 {
		return nil, nil, errors.New("karl: empty point set")
	}
	if len(sample) == 0 {
		return nil, nil, errors.New("karl: empty tuning sample")
	}
	cfg := buildConfig{method: MethodKARL}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.weights != nil {
		return nil, nil, errors.New("karl: dynamic tuning takes unit weights (weights arrive per-insert)")
	}
	tw := w.internal(kern, cfg.method)
	trace := tuning.MixedTrace(points, nil, sample, queriesPerInsert)
	build := func(c tuning.DynamicCandidate) (tuning.MutableEngine, error) {
		candOpts := append(append([]Option{}, opts...),
			WithSealSize(c.SealSize), WithCompactionFanout(c.Fanout))
		return NewDynamic(kern, candOpts...)
	}
	results, err := tuning.OfflineDynamic(build, tw, trace, nil)
	if err != nil {
		return nil, nil, err
	}
	winner := results[0]
	engOpts := append(append([]Option{}, opts...),
		WithSealSize(winner.Candidate.SealSize), WithCompactionFanout(winner.Candidate.Fanout))
	d, err := NewDynamic(kern, engOpts...)
	if err != nil {
		return nil, nil, err
	}
	return d, &DynamicTuneReport{
		SealSize:   winner.Candidate.SealSize,
		Fanout:     winner.Candidate.Fanout,
		Throughput: winner.Throughput,
	}, nil
}

// InSituReport describes an in-situ run end to end.
type InSituReport struct {
	// ChosenDepth is the simulated tree height the tuner selected
	// (0 = the full tree).
	ChosenDepth int
	// Throughput is end-to-end queries/sec including index construction
	// and tuning time.
	Throughput float64
}

// InSitu answers an entire query stream in the in-situ scenario of Section
// III-C, where the dataset arrives online and index construction plus
// tuning count toward the response time: it builds a single kd-tree,
// spends sampleFrac (e.g. 0.01) of the stream picking the best simulated
// tree height, and serves the rest with the winner. Every query is
// answered exactly once; results are discarded (use Build when you need
// the answers individually — InSitu exists to measure and to warm indexes
// for online kernel learning loops).
func InSitu(points [][]float64, kern Kernel, w Workload, queries [][]float64, sampleFrac float64, opts ...Option) (*InSituReport, error) {
	if len(points) == 0 || len(queries) == 0 {
		return nil, errors.New("karl: empty point or query set")
	}
	cfg := buildConfig{method: MethodKARL}
	for _, opt := range opts {
		opt(&cfg)
	}
	rep, err := tuning.Online(vec.FromRows(points), cfg.weights,
		w.internal(kern, cfg.method), vec.FromRows(queries), sampleFrac)
	if err != nil {
		return nil, err
	}
	return &InSituReport{ChosenDepth: rep.ChosenDepth, Throughput: rep.Throughput}, nil
}
