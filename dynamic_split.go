package karl

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"karl/internal/segment"
)

// NextSeq returns the id the next insert will be assigned. After a Split,
// the moved engine continues from the same counter, so the value at split
// time is the fence separating inherited ids (strictly below it, assigned
// by an ancestor engine) from native ones — what the cluster layer's
// delete routing needs to chase a point across splits.
func (d *DynamicEngine) NextSeq() uint64 {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.nextSeq
}

// SplitPlane proposes a balanced axis-aligned cut over the live points:
// the median value of the widest dimension, adjusted so neither side is
// empty. Points with p[dim] >= cut form the moving half. It fails when
// the dataset is empty, a single point, or degenerate (all points
// identical), in which case no axis cut can separate anything.
func (d *DynamicEngine) SplitPlane() (dim int, cut float64, err error) {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.dims == 0 {
		return 0, 0, errors.New("karl: split plane over an empty engine")
	}
	lo := make([]float64, sh.dims)
	hi := make([]float64, sh.dims)
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	var vals []float64
	scan := func(p []float64) {
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	for _, s := range sh.man.Segs {
		pts := s.Tree.Points
		for r := 0; r < pts.Rows; r++ {
			scan(pts.Row(r))
		}
	}
	for _, mt := range []*memtable{sh.mem, sh.sealing} {
		if mt == nil {
			continue
		}
		for i := 0; i < mt.n; i++ {
			scan(mt.m.Row(i))
		}
	}
	dim, width := 0, -1.0
	for j := range lo {
		if w := hi[j] - lo[j]; w > width {
			dim, width = j, w
		}
	}
	if width <= 0 {
		return 0, 0, errors.New("karl: split plane: all points identical")
	}
	for _, s := range sh.man.Segs {
		pts := s.Tree.Points
		for r := 0; r < pts.Rows; r++ {
			vals = append(vals, pts.Row(r)[dim])
		}
	}
	for _, mt := range []*memtable{sh.mem, sh.sealing} {
		if mt == nil {
			continue
		}
		for i := 0; i < mt.n; i++ {
			vals = append(vals, mt.m.Row(i)[dim])
		}
	}
	sort.Float64s(vals)
	cut = vals[len(vals)/2]
	if cut == vals[0] {
		// Everything at or below the median ties the minimum: advance to
		// the first strictly larger value so the lower side is non-empty.
		i := sort.SearchFloat64s(vals, cut)
		for i < len(vals) && vals[i] == cut {
			i++
		}
		if i == len(vals) {
			return 0, 0, errors.New("karl: split plane: degenerate on the widest dimension")
		}
		cut = vals[i]
	}
	return dim, cut, nil
}

// Split extracts every live point for which pred(point) is true into a
// NEW dynamic engine with the same kernel, index and maintenance
// configuration, removing those points from the receiver — the engine
// half of a cluster shard split. Both sides are rebuilt as single sealed
// segments (the receiver's manifest advances one epoch, exactly like a
// full Compact), pending tombstones and TTL-expired rows are physically
// dropped on the way, and sequence numbers, insert times and decay state
// travel with the moved rows, so ids remain valid on whichever side their
// point landed. The moved engine continues the receiver's id counter from
// the split instant: ids it assigns later never collide with inherited
// ones.
//
// Inserts and deletes block for the duration; queries on existing clones
// proceed over the old snapshot and switch atomically, the same contract
// as Compact.
func (d *DynamicEngine) Split(pred func(p []float64) bool) (MutableEngine, error) {
	if pred == nil {
		return nil, errors.New("karl: nil split predicate")
	}
	sh := d.sh
	sh.mu.Lock()
	for sh.compacting || sh.sealing != nil || sh.draining {
		sh.cond.Wait()
	}
	if sh.closed {
		sh.mu.Unlock()
		return nil, errors.New("karl: engine is closed")
	}
	if err := sh.compactErrLocked(); err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	if sh.man.Len()+sh.mem.len() == 0 {
		// Nothing to move: hand back an empty sibling sharing the config.
		moved, err := newDynamicView(sh.emptySiblingLocked())
		sh.mu.Unlock()
		return moved, err
	}
	sh.draining = true // blocks inserts, deletes, seals and background merges
	segs := sh.man.Segs
	run := sh.mem.run()
	keepID := sh.nextID
	sh.nextID++
	opts, consumed := sh.mergeOptsLocked(segs)
	sh.mu.Unlock()

	keepSeg, moveSeg, err := segment.Divide(segs, run, opts, pred, sh.bcfg, keepID, 1)

	sh.mu.Lock()
	sh.draining = false
	if err != nil {
		sh.cond.Broadcast()
		sh.mu.Unlock()
		return nil, fmt.Errorf("karl: split: %w", err)
	}
	man := &segment.Manifest{Epoch: sh.man.Epoch + 1}
	if keepSeg != nil {
		man.Segs = []*segment.Segment{keepSeg}
	}
	sh.man = man
	for _, seq := range consumed {
		delete(sh.tombs, seq)
	}
	sh.compactions++
	if sh.mem != nil {
		sh.mem.n = 0 // absorbed into the divide
	}
	msh := sh.emptySiblingLocked()
	if moveSeg != nil {
		msh.man = &segment.Manifest{Epoch: 1, Segs: []*segment.Segment{moveSeg}}
		msh.nextID = 2
		// The moved rows left this engine without individual Delete calls;
		// a replication follower must still learn they are gone, so each
		// shed seq enters the delete log as a deletion (and the Deletes
		// counter, keeping DeletePos == deletes across persistence). A
		// coreset moved half has no per-row seqs to log — poison the log
		// instead so every follower position predates it and resyncs.
		if moveSeg.Seqs != nil {
			for _, seq := range moveSeg.Seqs {
				sh.deletes++
				sh.logDeleteLocked(seq)
			}
		} else {
			sh.deletes++
			sh.delLog = nil
			sh.delLogBase = uint64(sh.deletes)
		}
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
	return newDynamicView(msh)
}

// emptySiblingLocked creates fresh shared state with the receiver's
// configuration, dimensionality and id counter — the shell a split's
// moved half is installed into. Called with sh.mu held.
func (sh *dynShared) emptySiblingLocked() *dynShared {
	m := &dynShared{
		kern:          sh.kern,
		method:        sh.method,
		maxDepth:      sh.maxDepth,
		refineWorkers: sh.refineWorkers,
		bcfg:          sh.bcfg,
		policy:        sh.policy,
		coldSeed:      sh.coldSeed,
		autoCompact:   sh.autoCompact,
		batchExec:     sh.batchExec,
		dualCtr:       &dualCounters{},
		ttl:           sh.ttl,
		halfLife:      sh.halfLife,
		now:           sh.now,
		dims:          sh.dims,
		man:           &segment.Manifest{},
		nextID:        1,
		nextSeq:       sh.nextSeq,
		tombs:         map[uint64]tombstone{},
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}
