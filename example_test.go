package karl_test

import (
	"fmt"

	"karl"
)

// grid4 is a tiny deterministic dataset: a 4×4 lattice in [0,1]².
func grid4() [][]float64 {
	var pts [][]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			pts = append(pts, []float64{float64(i) / 3, float64(j) / 3})
		}
	}
	return pts
}

func ExampleBuild() {
	eng, err := karl.Build(grid4(), karl.Gaussian(1))
	if err != nil {
		panic(err)
	}
	q := []float64{0.5, 0.5}
	exact, _ := eng.Aggregate(q)
	over, _ := eng.Threshold(q, 10)
	fmt.Printf("F(q) = %.4f, F(q) > 10: %v\n", exact, over)
	// Output: F(q) = 12.2697, F(q) > 10: true
}

func ExampleEngine_Approximate() {
	eng, err := karl.Build(grid4(), karl.Gaussian(1))
	if err != nil {
		panic(err)
	}
	exact, _ := eng.Aggregate([]float64{0, 0})
	approx, _ := eng.Approximate([]float64{0, 0}, 0.1)
	within := approx >= 0.9*exact && approx <= 1.1*exact
	fmt.Printf("within ±10%%: %v\n", within)
	// Output: within ±10%: true
}

func ExampleNewKDE() {
	kde, err := karl.NewKDEWithGamma(grid4(), 4)
	if err != nil {
		panic(err)
	}
	center, _ := kde.Density([]float64{0.5, 0.5}, 0.05)
	corner, _ := kde.Density([]float64{-1, -1}, 0.05)
	fmt.Printf("center denser than far corner: %v\n", center > corner)
	// Output: center denser than far corner: true
}

func ExampleNewSVM() {
	// A hand-built decision function: one support vector at the origin.
	m, err := karl.NewSVM([][]float64{{0, 0}}, []float64{1}, 0.5, karl.Gaussian(1))
	if err != nil {
		panic(err)
	}
	near, _ := m.Classify([]float64{0.2, 0})
	far, _ := m.Classify([]float64{3, 0})
	fmt.Printf("near: %v, far: %v\n", near, far)
	// Output: near: true, far: false
}
