package karl

import (
	"fmt"

	"karl/internal/coreset"
	"karl/internal/index"
	"karl/internal/vec"
)

// CoresetMethod selects a sketch construction for BuildCoreset,
// Engine.Sketch and KDE.Compress.
type CoresetMethod int

const (
	// CoresetAuto picks halving for identical (Type I) weights and
	// sensitivity sampling for positive (Type II) weights.
	CoresetAuto CoresetMethod = iota
	// CoresetUniform is uniform sampling with Hoeffding size selection
	// (Type I baseline).
	CoresetUniform
	// CoresetHalving is the discrepancy/merge-halving construction in the
	// spirit of Phillips–Tai near-optimal KDE coresets (Type I Gaussian
	// and the other distance kernels).
	CoresetHalving
	// CoresetSensitivity is weight-proportional importance sampling
	// (Type II positive weights).
	CoresetSensitivity
)

// String implements fmt.Stringer.
func (m CoresetMethod) String() string { return coresetMethodOf(m).String() }

func coresetMethodOf(m CoresetMethod) coreset.Method {
	switch m {
	case CoresetUniform:
		return coreset.Uniform
	case CoresetHalving:
		return coreset.Halving
	case CoresetSensitivity:
		return coreset.Sensitivity
	default:
		return coreset.Auto
	}
}

func coresetMethodFrom(m coreset.Method) CoresetMethod {
	switch m {
	case coreset.Uniform:
		return CoresetUniform
	case coreset.Halving:
		return CoresetHalving
	case coreset.Sensitivity:
		return CoresetSensitivity
	default:
		return CoresetAuto
	}
}

// SketchBasis labels the nature of a sketch's ε bound. No construction
// yields a uniform deterministic guarantee; Basis tells consumers which
// weaker form they hold.
type SketchBasis string

const (
	// SketchBasisUnknown is the zero value, seen only on engines restored
	// from files written before the basis was recorded.
	SketchBasisUnknown SketchBasis = ""
	// SketchBasisExact marks an identity sketch (S = P): zero error,
	// deterministic.
	SketchBasisExact SketchBasis = "exact"
	// SketchBasisHoeffding marks a sampling construction: ε holds per
	// query with probability ≥ 1−δ (SketchInfo.Delta), not uniformly over
	// queries.
	SketchBasisHoeffding SketchBasis = "hoeffding"
	// SketchBasisEmpirical marks the halving construction: ε was validated
	// on a held-out query sample with a 2× margin, not proved;
	// out-of-sample queries can exceed it.
	SketchBasisEmpirical SketchBasis = "empirical"
)

// SketchInfo records a coreset engine's provenance: where its points came
// from and what error bound its construction advertises. The bound is on
// the normalized aggregate: |F_P(q)/W − F_S(q)/W_S| ≤ Eps, with W (= W_S)
// the source total weight. Basis records the nature of that bound
// (high-probability per query, or empirically validated) — it is not a
// uniform deterministic guarantee.
type SketchInfo struct {
	// SourceLen is the cardinality of the set the sketch was built from.
	SourceLen int
	// SourceWeight is the source total weight Σ w_i (= the sketch's).
	SourceWeight float64
	// Len is the coreset cardinality.
	Len int
	// Eps is the advertised normalized error bound ε; see Basis for the
	// kind of bound it is.
	Eps float64
	// Delta is the per-query failure probability δ behind Eps when Basis
	// is SketchBasisHoeffding; 0 otherwise.
	Delta float64
	// Basis labels the nature of the Eps bound.
	Basis SketchBasis
	// Method is the construction that produced the sketch.
	Method CoresetMethod
}

// WithCoresetMethod selects the sketch construction (default CoresetAuto).
// Only BuildCoreset, Engine.Sketch and KDE.Compress consult it.
func WithCoresetMethod(m CoresetMethod) Option {
	return func(c *buildConfig) { c.coresetMethod = m }
}

// WithCoresetSeed seeds the sketch construction's randomness (default 1),
// for reproducible coresets.
func WithCoresetSeed(seed int64) Option {
	return func(c *buildConfig) { c.coresetSeed = seed }
}

// WithCoresetMinSize floors the coreset cardinality (default 32).
func WithCoresetMinSize(n int) Option {
	return func(c *buildConfig) { c.coresetMinSize = n }
}

// BuildCoreset sketches the points down to an error-bounded coreset and
// indexes the coreset, so queries run through the same KARL bound
// machinery over far fewer points. The resulting engine answers with
// normalized error ≤ eps relative to the full set — a high-probability or
// empirically validated bound, not a deterministic one; SketchInfo reports
// the provenance including the bound's basis. All Build options apply,
// WithWeights supplies Type II source weights.
func BuildCoreset(points [][]float64, kern Kernel, eps float64, opts ...Option) (*Engine, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("karl: empty point set")
	}
	cfg := defaultBuildConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return sketchAndBuild(vec.FromRows(points), cfg.weights, kern, eps, cfg)
}

// Sketch derives a coreset engine from an already-built engine: the
// indexed points are reduced with the requested guarantee and re-indexed
// under the same kernel, index structure and bounding method. opts may
// override the coreset construction (WithCoresetMethod, WithCoresetSeed,
// WithCoresetMinSize) and the index layout of the derived engine.
func (e *Engine) Sketch(eps float64, opts ...Option) (*Engine, error) {
	tree := e.tree
	cfg := defaultBuildConfig()
	cfg.kind = indexKindFrom(tree.Kind)
	cfg.leafCap = tree.LeafCap
	if e.eng.Method() == methodOf(MethodSOTA) {
		cfg.method = MethodSOTA
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	var weights []float64
	if tree.Weights != nil {
		weights = tree.Weights
	}
	return sketchAndBuild(tree.Points, weights, e.kern, eps, cfg)
}

// sketchAndBuild runs the construction and indexes the result, attaching
// provenance. It is the shared core of BuildCoreset and Engine.Sketch.
func sketchAndBuild(points *vec.Matrix, weights []float64, kern Kernel, eps float64, cfg buildConfig) (*Engine, error) {
	sk, err := coreset.Build(points, weights, kern, eps, coreset.Config{
		Method:  coresetMethodOf(cfg.coresetMethod),
		Seed:    cfg.coresetSeed,
		MinSize: cfg.coresetMinSize,
	})
	if err != nil {
		return nil, err
	}
	cfg.weights = sk.Weights
	eng, err := buildMatrixCfg(sk.Points, kern, cfg)
	if err != nil {
		return nil, err
	}
	eng.sketch = &SketchInfo{
		SourceLen:    sk.SourceN,
		SourceWeight: sk.SourceW,
		Len:          sk.Len(),
		Eps:          sk.Eps,
		Delta:        sk.Delta,
		Basis:        SketchBasis(sk.Basis),
		Method:       coresetMethodFrom(sk.Method),
	}
	return eng, nil
}

// SketchInfo reports the engine's coreset provenance. ok is false for
// engines indexing their full source set.
func (e *Engine) SketchInfo() (info SketchInfo, ok bool) {
	if e.sketch == nil {
		return SketchInfo{}, false
	}
	return *e.sketch, true
}

// indexKindFrom maps the internal tree kind back to the public enum.
func indexKindFrom(k index.Kind) IndexKind {
	switch k {
	case index.BallTree:
		return BallTree
	case index.VPTree:
		return VPTree
	default:
		return KDTree
	}
}

// Compress sketches the estimator's point set down to an error-bounded
// coreset (see BuildCoreset for the bound's nature); the compressed KDE's
// densities satisfy |KDE_P(q) − KDE_S(q)| ≤ eps/n·W = eps (normalized
// error transfers one-to-one to the density scale, which is already
// normalized by n).
func (k *KDE) Compress(eps float64, opts ...Option) (*KDE, error) {
	eng, err := k.eng.Sketch(eps, opts...)
	if err != nil {
		return nil, err
	}
	return &KDE{eng: eng, n: k.n}, nil
}
