package karl

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestEngineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := cloud(rng, 400, 3)
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	orig, err := Build(pts, Polynomial(0.5, 1, 3),
		WithWeights(w), WithIndex(BallTree, 32), WithMethod(MethodSOTA))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() || loaded.Dims() != orig.Dims() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", loaded.Len(), loaded.Dims(), orig.Len(), orig.Dims())
	}
	if loaded.Kernel() != orig.Kernel() {
		t.Fatal("kernel changed")
	}
	// Identical answers on a batch of queries.
	for i := 0; i < 30; i++ {
		q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		a, _ := orig.Aggregate(q)
		b, _ := loaded.Aggregate(q)
		if a != b {
			t.Fatalf("Aggregate diverged: %v vs %v", a, b)
		}
		ta, _ := orig.Threshold(q, a*1.01)
		tb, _ := loaded.Threshold(q, a*1.01)
		if ta != tb {
			t.Fatal("Threshold diverged")
		}
	}
}

func TestEngineRoundTripUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := cloud(rng, 100, 2)
	orig, err := Build(pts, Gaussian(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.3, 0.3}
	a, _ := orig.Aggregate(q)
	b, _ := loaded.Aggregate(q)
	if a != b {
		t.Fatalf("diverged: %v vs %v", a, b)
	}
}

func TestSVMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 150
	pts := make([][]float64, n)
	labels := make([]float64, n)
	for i := range pts {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		labels[i] = sign
		pts[i] = []float64{sign + rng.NormFloat64()*0.3, sign + rng.NormFloat64()*0.3}
	}
	orig, err := TrainTwoClassSVM(pts, labels, SVMConfig{Kernel: Gaussian(1)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSVM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rho != orig.Rho || loaded.SupportVectors != orig.SupportVectors {
		t.Fatalf("model metadata changed: ρ %v vs %v, SVs %d vs %d",
			loaded.Rho, orig.Rho, loaded.SupportVectors, orig.SupportVectors)
	}
	for i := 0; i < 40; i++ {
		q := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		a, _ := orig.Classify(q)
		b, _ := loaded.Classify(q)
		if a != b {
			t.Fatalf("classification diverged at %v", q)
		}
	}
}

func TestReadEngineRejectsGarbage(t *testing.T) {
	if _, err := ReadEngine(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadSVM(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadEngineRejectsBadVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pts := cloud(rng, 50, 2)
	eng, _ := Build(pts, Gaussian(1))
	p := eng.payload()
	p.Version = 99
	var buf bytes.Buffer
	if _, err := ReadEngine(&buf); err == nil {
		t.Fatal("empty buffer accepted")
	}
	if _, err := p.restore(); err == nil {
		t.Fatal("bad version accepted")
	}
}
