package karl

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestEngineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := cloud(rng, 400, 3)
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	orig, err := Build(pts, Polynomial(0.5, 1, 3),
		WithWeights(w), WithIndex(BallTree, 32), WithMethod(MethodSOTA))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() || loaded.Dims() != orig.Dims() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", loaded.Len(), loaded.Dims(), orig.Len(), orig.Dims())
	}
	if loaded.Kernel() != orig.Kernel() {
		t.Fatal("kernel changed")
	}
	// Identical answers on a batch of queries.
	for i := 0; i < 30; i++ {
		q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		a, _ := orig.Aggregate(q)
		b, _ := loaded.Aggregate(q)
		if a != b {
			t.Fatalf("Aggregate diverged: %v vs %v", a, b)
		}
		ta, _ := orig.Threshold(q, a*1.01)
		tb, _ := loaded.Threshold(q, a*1.01)
		if ta != tb {
			t.Fatal("Threshold diverged")
		}
	}
}

func TestEngineRoundTripUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := cloud(rng, 100, 2)
	orig, err := Build(pts, Gaussian(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.3, 0.3}
	a, _ := orig.Aggregate(q)
	b, _ := loaded.Aggregate(q)
	if a != b {
		t.Fatalf("diverged: %v vs %v", a, b)
	}
}

func TestSVMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 150
	pts := make([][]float64, n)
	labels := make([]float64, n)
	for i := range pts {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		labels[i] = sign
		pts[i] = []float64{sign + rng.NormFloat64()*0.3, sign + rng.NormFloat64()*0.3}
	}
	orig, err := TrainTwoClassSVM(pts, labels, SVMConfig{Kernel: Gaussian(1)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSVM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rho != orig.Rho || loaded.SupportVectors != orig.SupportVectors {
		t.Fatalf("model metadata changed: ρ %v vs %v, SVs %d vs %d",
			loaded.Rho, orig.Rho, loaded.SupportVectors, orig.SupportVectors)
	}
	for i := 0; i < 40; i++ {
		q := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		a, _ := orig.Classify(q)
		b, _ := loaded.Classify(q)
		if a != b {
			t.Fatalf("classification diverged at %v", q)
		}
	}
}

func TestReadEngineRejectsGarbage(t *testing.T) {
	if _, err := ReadEngine(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadSVM(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadEngineRejectsBadVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pts := cloud(rng, 50, 2)
	eng, _ := Build(pts, Gaussian(1))
	p := eng.payload()
	p.Version = 99
	var buf bytes.Buffer
	if _, err := ReadEngine(&buf); err == nil {
		t.Fatal("empty buffer accepted")
	}
	_, err := p.restore()
	if err == nil {
		t.Fatal("bad version accepted")
	}
	// The error must name the offending version and the readable range, so
	// operators can tell a stale binary from a corrupt file.
	for _, want := range []string{"version 99", "1 through 7"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("version error %q does not mention %q", err, want)
		}
	}
	p.Version = 0
	if _, err := p.restore(); err == nil {
		t.Fatal("version 0 accepted")
	}
}

// legacyPayload downgrades a payload to a pre-v4 wire image: only the data
// and build parameters, no flat-index arrays (those fields decode as nil
// from genuinely old files).
func legacyPayload(p enginePayload, version int) enginePayload {
	p.Version = version
	p.PointID = nil
	p.NodeStart, p.NodeEnd, p.NodeRight, p.NodeDepth = nil, nil, nil, nil
	p.VolData = nil
	return p
}

// TestReadEngineAcceptsLegacyVersions pins backward compatibility: files
// written by every older format version still load by rebuilding the index
// from the stored points. A rebuilt tree may sum leaves in a different
// order, so answers are compared with a tolerance rather than bitwise.
func TestReadEngineAcceptsLegacyVersions(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	pts := cloud(rng, 60, 2)
	eng, _ := Build(pts, Gaussian(2))
	for version := 1; version <= 3; version++ {
		p := legacyPayload(eng.payload(), version)
		p.Sketch = nil
		loaded, err := p.restore()
		if err != nil {
			t.Fatalf("version-%d payload rejected: %v", version, err)
		}
		q := []float64{0.4, 0.4}
		a, _ := eng.Aggregate(q)
		b, _ := loaded.Aggregate(q)
		if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
			t.Fatalf("version %d diverged: %v vs %v", version, a, b)
		}
	}
}

// TestLegacyGobStreamLoads decodes a legacy payload through the real gob
// path (encode the downgraded struct, decode with ReadEngine) so missing
// v4 fields are exercised end to end.
func TestLegacyGobStreamLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pts := cloud(rng, 120, 3)
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = rng.Float64() + 0.1
	}
	eng, err := Build(pts, Gaussian(1.5), WithWeights(w), WithIndex(BallTree, 16))
	if err != nil {
		t.Fatal(err)
	}
	p := legacyPayload(eng.payload(), 3)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadEngine(&buf)
	if err != nil {
		t.Fatalf("legacy gob stream rejected: %v", err)
	}
	if loaded.Len() != eng.Len() || loaded.Kernel() != eng.Kernel() {
		t.Fatal("legacy load changed shape or kernel")
	}
	q := []float64{0.5, 0.5, 0.5}
	a, _ := eng.Aggregate(q)
	b, _ := loaded.Aggregate(q)
	if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
		t.Fatalf("diverged: %v vs %v", a, b)
	}
}

// TestV4RestoreRejectsCorruptIndex ensures the reconstruction path refuses
// structurally broken node arrays instead of building a bad tree.
func TestV4RestoreRejectsCorruptIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	pts := cloud(rng, 80, 2)
	eng, _ := Build(pts, Gaussian(1))
	p := eng.payload()
	p.NodeRight[0] = 0 // right child cannot point at the root
	if _, err := p.restore(); err == nil {
		t.Fatal("corrupt node arrays accepted")
	}
	p = eng.payload()
	p.PointID[0] = p.PointID[1] // duplicate mapping
	if _, err := p.restore(); err == nil {
		t.Fatal("duplicate PointID accepted")
	}
}

// TestDynamicRoundTrip pins the v5 format: a segmented engine with sealed
// segments, a compacted tier and a partially filled memtable reloads with
// the identical manifest and bitwise-identical answers, and keeps
// accepting inserts.
func TestDynamicRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// Auto-compaction off: a background compaction landing between WriteTo's
	// snapshot and the bitwise comparison below would change the original's
	// summation order (the answers stay within ε, but this test pins
	// bitwise equality, which needs identical segment layouts).
	d, err := NewDynamic(Gaussian(3), WithIndex(BallTree, 16), WithSealSize(64),
		WithCompactionFanout(2), WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		if err := d.Insert(p, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadDynamic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != d.Len() || loaded.Dims() != d.Dims() || loaded.Kernel() != d.Kernel() {
		t.Fatal("shape or kernel changed across round trip")
	}
	origSegs, loadSegs := d.Segments(), loaded.Segments()
	if len(origSegs) != len(loadSegs) {
		t.Fatalf("segment count changed: %d vs %d", len(origSegs), len(loadSegs))
	}
	for i := range origSegs {
		if origSegs[i] != loadSegs[i] {
			t.Fatalf("segment %d changed: %+v vs %+v", i, origSegs[i], loadSegs[i])
		}
	}
	if loaded.Epoch() != d.Epoch() || loaded.Seals() != d.Seals() {
		t.Fatal("epoch or seal count changed")
	}
	for i := 0; i < 25; i++ {
		q := []float64{rng.Float64(), rng.Float64()}
		a, err := d.Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("Aggregate diverged: %v vs %v", a, b)
		}
		ta, _ := d.Threshold(q, a*1.01)
		tb, _ := loaded.Threshold(q, a*1.01)
		if ta != tb {
			t.Fatal("Threshold diverged")
		}
	}
	// The reloaded engine keeps working as a mutable engine.
	for i := 0; i < 100; i++ {
		if err := loaded.Insert([]float64{rng.Float64(), rng.Float64()}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if loaded.Len() != d.Len()+100 {
		t.Fatalf("Len after post-load inserts = %d", loaded.Len())
	}
}

// TestDynamicRoundTripEmptyMemtableOnly covers the two degenerate layouts:
// only buffered points (no segments), and a freshly compacted single
// segment with an empty memtable.
func TestDynamicRoundTripEmptyMemtableOnly(t *testing.T) {
	d, _ := NewDynamic(Gaussian(1))
	for i := 0; i < 10; i++ {
		if err := d.Insert([]float64{float64(i)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadDynamic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.Aggregate([]float64{2})
	b, err := loaded.Aggregate([]float64{2})
	if err != nil || a != b {
		t.Fatalf("memtable-only round trip diverged: %v vs %v (%v)", a, b, err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err = ReadDynamic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.MemtableLen() != 0 || len(loaded.Segments()) != 1 {
		t.Fatalf("compacted layout changed: mem %d segs %d", loaded.MemtableLen(), len(loaded.Segments()))
	}
	b, _ = loaded.Aggregate([]float64{2})
	a, _ = d.Aggregate([]float64{2})
	if a != b {
		t.Fatalf("compacted round trip diverged: %v vs %v", a, b)
	}
}

// TestReadDynamicRejectsCrossFormat pins the error behavior when the two
// stream kinds are mixed up: a static engine file fed to ReadDynamic and a
// dynamic file fed to ReadEngine both produce clear errors, not silently
// wrong engines.
func TestReadDynamicRejectsCrossFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	eng, _ := Build(cloud(rng, 50, 2), Gaussian(1))
	var buf bytes.Buffer
	if _, err := eng.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDynamic(&buf); err == nil {
		t.Fatal("ReadDynamic accepted a static engine stream")
	}
	d, _ := NewDynamic(Gaussian(1), WithSealSize(4))
	for i := 0; i < 10; i++ {
		if err := d.Insert([]float64{float64(i), 0}, 1); err != nil {
			t.Fatal(err)
		}
	}
	buf.Reset()
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ReadEngine(&buf)
	if err == nil {
		t.Fatal("ReadEngine accepted a dynamic engine stream")
	}
	if !strings.Contains(err.Error(), "ReadDynamic") {
		t.Fatalf("cross-format error %q does not point at ReadDynamic", err)
	}
}

// roundTrip serializes and reloads an engine, asserting identical answers
// on sampled queries.
func roundTrip(t *testing.T, orig *Engine, rng *rand.Rand) *Engine {
	t.Helper()
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() || loaded.Dims() != orig.Dims() || loaded.Kernel() != orig.Kernel() {
		t.Fatal("shape or kernel changed across round trip")
	}
	for i := 0; i < 25; i++ {
		q := make([]float64, orig.Dims())
		for j := range q {
			q[j] = rng.Float64()
		}
		a, _ := orig.Aggregate(q)
		b, _ := loaded.Aggregate(q)
		if a != b {
			t.Fatalf("Aggregate diverged: %v vs %v", a, b)
		}
		ta, _ := orig.Threshold(q, a*1.02)
		tb, _ := loaded.Threshold(q, a*1.02)
		if ta != tb {
			t.Fatal("Threshold diverged")
		}
	}
	return loaded
}

// TestEngineRoundTripVPTree covers the third index structure's persist
// path (Kind mapping both directions).
func TestEngineRoundTripVPTree(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	pts := cloud(rng, 300, 3)
	orig, err := Build(pts, Gaussian(3), WithIndex(VPTree, 24))
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, orig, rng)
	if loaded.tree.Kind.String() != "vp-tree" {
		t.Fatalf("index kind changed: %v", loaded.tree.Kind)
	}
}

// TestEngineRoundTripMixedSign covers a Type III engine (mixed-sign
// weights, P⁺/P⁻ decomposition) end to end.
func TestEngineRoundTripMixedSign(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	pts := cloud(rng, 350, 3)
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = rng.NormFloat64() // both signs
	}
	orig, err := Build(pts, Gaussian(4), WithWeights(w), WithIndex(KDTree, 16))
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, orig, rng)
}

// TestCoresetEngineRoundTrip checks a sketched engine persists with its
// provenance: source size, total weight, ε and construction survive.
func TestCoresetEngineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	pts := cloud(rng, 3000, 3)
	orig, err := BuildCoreset(pts, Gaussian(20), 0.1, WithCoresetMethod(CoresetHalving))
	if err != nil {
		t.Fatal(err)
	}
	info, ok := orig.SketchInfo()
	if !ok {
		t.Fatal("coreset engine has no SketchInfo")
	}
	if info.SourceLen != 3000 || info.Len != orig.Len() || info.Method != CoresetHalving {
		t.Fatalf("bad provenance: %+v", info)
	}
	wantBasis := SketchBasisEmpirical
	if info.Len == info.SourceLen {
		wantBasis = SketchBasisExact // no halving round was accepted
	}
	if info.Basis != wantBasis {
		t.Fatalf("basis %q, want %q", info.Basis, wantBasis)
	}
	loaded := roundTrip(t, orig, rng)
	got, ok := loaded.SketchInfo()
	if !ok {
		t.Fatal("provenance lost across round trip")
	}
	if got != info {
		t.Fatalf("provenance changed: %+v vs %+v", got, info)
	}
	// A full-set engine keeps reporting no sketch after a round trip.
	plain, _ := Build(cloud(rng, 80, 2), Gaussian(1))
	var buf bytes.Buffer
	if _, err := plain.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reloaded.SketchInfo(); ok {
		t.Fatal("full-set engine grew a sketch across round trip")
	}
}
