package karl

import (
	"encoding/gob"
	"io"
	"os"
	"testing"

	"karl/internal/shard"
)

// TestMain pins the gob type-registration order before any test runs.
// encoding/gob assigns wire type ids process-wide, in order of first use,
// and the golden fixtures under testdata/persist embed those ids — so a
// test that happens to serialize one payload kind before another would
// shift the ids every later encode in the process uses and break the
// byte-for-byte fixture comparisons, with the failure depending on which
// tests were selected. Registering the persisted types here, in the order
// a fresh process writing an engine file meets them, makes fixture bytes
// independent of test selection and ordering.
func TestMain(m *testing.M) {
	for _, v := range []any{enginePayload{}, dynamicPayload{}} {
		if err := gob.NewEncoder(io.Discard).Encode(v); err != nil {
			panic(err)
		}
	}
	man, err := shard.NewManifest(shard.Hash, []shard.Member{{ID: 1, Name: "pin"}})
	if err == nil {
		_, err = man.WriteTo(io.Discard)
	}
	if err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}
