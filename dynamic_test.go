package karl

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewDynamicValidation(t *testing.T) {
	if _, err := NewDynamic(Gaussian(-1)); err == nil {
		t.Fatal("bad kernel accepted")
	}
	if _, err := NewDynamic(Gaussian(1), WithWeights([]float64{1})); err == nil {
		t.Fatal("WithWeights accepted")
	}
}

func TestDynamicEmptyQueriesFail(t *testing.T) {
	d, err := NewDynamic(Gaussian(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Aggregate([]float64{1}); err == nil {
		t.Fatal("query on empty engine accepted")
	}
	if d.Len() != 0 {
		t.Fatal("empty engine has non-zero length")
	}
}

func TestDynamicInsertValidation(t *testing.T) {
	d, _ := NewDynamic(Gaussian(1))
	if err := d.Insert(nil, 1); err == nil {
		t.Fatal("empty point accepted")
	}
	if err := d.Insert([]float64{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert([]float64{1}, 1); err == nil {
		t.Fatal("dimension change accepted")
	}
	if _, err := d.Aggregate([]float64{1}); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
}

// TestDynamicInsertRejectsNonFinite: one NaN coordinate would poison every
// subsequent aggregate, so Insert must reject it at the door and leave the
// engine untouched.
func TestDynamicInsertRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name string
		p    []float64
		w    float64
	}{
		{"nan coordinate", []float64{1, math.NaN()}, 1},
		{"+inf coordinate", []float64{math.Inf(1), 2}, 1},
		{"-inf coordinate", []float64{1, math.Inf(-1)}, 1},
		{"nan weight", []float64{1, 2}, math.NaN()},
		{"+inf weight", []float64{1, 2}, math.Inf(1)},
		{"-inf weight", []float64{1, 2}, math.Inf(-1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewDynamic(Gaussian(1))
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Insert(tc.p, tc.w); err == nil {
				t.Fatalf("Insert(%v, %v) accepted", tc.p, tc.w)
			}
			if d.Len() != 0 {
				t.Fatalf("rejected insert still buffered: Len=%d", d.Len())
			}
			// The engine must stay fully usable after a rejection.
			if err := d.Insert([]float64{1, 2}, 1); err != nil {
				t.Fatalf("valid insert after rejection: %v", err)
			}
			v, err := d.Aggregate([]float64{1, 2})
			if err != nil || v != 1 {
				t.Fatalf("aggregate after rejection = %v, %v", v, err)
			}
		})
	}
}

// TestDynamicMatchesStatic inserts points one by one and checks, at several
// checkpoints, that every query answer equals a from-scratch static build.
func TestDynamicMatchesStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	d, err := NewDynamic(Gaussian(6), WithIndex(KDTree, 16))
	if err != nil {
		t.Fatal(err)
	}
	var pts [][]float64
	var ws []float64
	checkpoints := map[int]bool{1: true, 63: true, 64: true, 255: true, 256: true, 900: true, 2000: true}
	for n := 1; n <= 2000; n++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		w := rng.NormFloat64() // mixed signs
		pts = append(pts, p)
		ws = append(ws, w)
		if err := d.Insert(p, w); err != nil {
			t.Fatal(err)
		}
		if !checkpoints[n] {
			continue
		}
		if d.Len() != n {
			t.Fatalf("Len = %d want %d", d.Len(), n)
		}
		static, err := Build(pts, Gaussian(6), WithWeights(ws), WithIndex(KDTree, 16))
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 5; qi++ {
			q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			want, _ := static.Aggregate(q)
			got, err := d.Aggregate(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("n=%d: Aggregate %v want %v", n, got, want)
			}
			tau := want * 1.01
			gotTh, err := d.Threshold(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			if wantTh := want > tau; gotTh != wantTh && math.Abs(want-tau) > 1e-9 {
				t.Fatalf("n=%d: Threshold %v want %v", n, gotTh, wantTh)
			}
		}
	}
	if d.Seals() == 0 {
		t.Fatal("2000 inserts should have sealed at least one segment")
	}
}

func TestDynamicApproximateGuaranteePositiveWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	d, _ := NewDynamic(Gaussian(4))
	var pts [][]float64
	for n := 0; n < 1500; n++ {
		p := []float64{rng.Float64(), rng.Float64()}
		pts = append(pts, p)
		if err := d.Insert(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	static, _ := Build(pts, Gaussian(4))
	for qi := 0; qi < 20; qi++ {
		q := []float64{rng.Float64(), rng.Float64()}
		exact, _ := static.Aggregate(q)
		got, err := d.Approximate(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if exact == 0 {
			continue
		}
		if rel := math.Abs(got-exact) / exact; rel > 0.1+1e-9 {
			t.Fatalf("rel error %v", rel)
		}
	}
}

func TestDynamicManualCompact(t *testing.T) {
	d, _ := NewDynamic(Gaussian(2))
	for i := 0; i < 10; i++ {
		if err := d.Insert([]float64{float64(i)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if d.Seals() != 0 {
		t.Fatal("tiny memtable should not auto-seal")
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.Compactions() != 1 {
		t.Fatalf("Compactions = %d", d.Compactions())
	}
	if segs := d.Segments(); len(segs) != 1 || segs[0].Len != 10 {
		t.Fatalf("Segments = %+v", segs)
	}
	if d.MemtableLen() != 0 {
		t.Fatalf("MemtableLen = %d after Compact", d.MemtableLen())
	}
	// Compact with nothing new to merge is a no-op.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.Compactions() != 1 {
		t.Fatal("no-op compact should not count")
	}
	got, err := d.Aggregate([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Fatalf("Aggregate = %v", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert([]float64{1}, 1); err == nil {
		t.Fatal("insert after Close accepted")
	}
}
